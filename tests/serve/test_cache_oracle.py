"""LRU-oracle property suite for the array-backed hot-key cache.

The columnar :class:`~repro.serve.HotKeyCache` promises bit-equivalence
with a plain ``OrderedDict`` LRU on *every* op sequence -- scalar ops,
bulk ops, and any interleaving -- covering contents, eviction (LRU)
order, and the hit/miss/eviction/invalidation counters.  This suite
drives random schedules of get/put/invalidate/flush (scalar and bulk,
including capacity 1, duplicate keys inside one batch, and invalidation
mid-stream) against the reference implementation below and asserts the
full observable state after every step.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest

from repro.serve import HotKeyCache

_ABSENT = object()


class OracleLRU:
    """The pre-columnar implementation: OrderedDict + move_to_end."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key, default=None):
        value = self.entries.get(key, _ABSENT)
        if value is _ABSENT:
            self.misses += 1
            return default
        self.hits += 1
        self.entries.move_to_end(key)
        return value

    def put(self, key, value):
        self.entries[key] = value
        self.entries.move_to_end(key)
        while len(self.entries) > self.capacity:
            self.entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key):
        if self.entries.pop(key, _ABSENT) is _ABSENT:
            return False
        self.invalidations += 1
        return True

    def flush(self):
        dropped = len(self.entries)
        self.entries.clear()
        self.invalidations += dropped
        return dropped

    def keys(self):
        return tuple(self.entries)


def assert_equivalent(cache: HotKeyCache, oracle: OracleLRU) -> None:
    """Full observable-state equality: contents, LRU order, counters."""
    assert len(cache) == len(oracle.entries)
    assert cache.keys() == oracle.keys()
    for key, value in oracle.entries.items():
        assert key in cache
        assert cache.peek(key, _ABSENT) is value
    assert cache.hits == oracle.hits
    assert cache.misses == oracle.misses
    assert cache.evictions == oracle.evictions
    assert cache.invalidations == oracle.invalidations


def drive(cache, oracle, rng, steps, universe, batch_max=24):
    """One random schedule over both implementations, checked stepwise."""
    for step in range(steps):
        op = rng.integers(0, 8)
        if op <= 1:  # scalar get
            key = int(rng.integers(0, universe))
            assert cache.get(key, _ABSENT) is oracle.get(key, _ABSENT)
        elif op == 2:  # scalar put
            key = int(rng.integers(0, universe))
            value = object()
            cache.put(key, value)
            oracle.put(key, value)
        elif op == 3:  # bulk get (duplicates allowed)
            keys = rng.integers(0, universe, rng.integers(0, batch_max))
            keys = [int(key) for key in keys]
            values, found = cache.get_many(keys, default=_ABSENT)
            expected = [oracle.get(key, _ABSENT) for key in keys]
            assert list(found) == [want is not _ABSENT for want in expected]
            for got, want in zip(values, expected):
                assert got is want
        elif op == 4:  # bulk put (duplicates allowed)
            keys = rng.integers(0, universe, rng.integers(0, batch_max))
            keys = [int(key) for key in keys]
            values = [object() for __ in keys]
            cache.put_many(keys, values)
            for key, value in zip(keys, values):
                oracle.put(key, value)
        elif op == 5:  # scalar invalidate
            key = int(rng.integers(0, universe))
            assert cache.invalidate(key) == oracle.invalidate(key)
        elif op == 6:  # bulk invalidate mid-stream
            keys = rng.integers(0, universe, rng.integers(0, batch_max))
            keys = [int(key) for key in keys]
            evicted = cache.invalidate_many(keys)
            assert evicted == sum(oracle.invalidate(key) for key in keys)
        else:  # occasional flush
            if rng.integers(0, 10) == 0:
                assert cache.flush() == oracle.flush()
        assert_equivalent(cache, oracle)


class TestOracleEquivalence:
    @pytest.mark.parametrize("capacity", [1, 2, 3, 7, 32])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_schedules(self, capacity, seed):
        rng = np.random.default_rng(1000 * capacity + seed)
        cache = HotKeyCache(capacity)
        oracle = OracleLRU(capacity)
        # A universe a few times the capacity keeps hits, misses,
        # evictions and re-puts of just-evicted keys all frequent.
        drive(cache, oracle, rng, steps=220, universe=3 * capacity + 4)

    @pytest.mark.parametrize("seed", range(3))
    def test_batches_larger_than_capacity(self, seed):
        # Batches wider than the whole cache: every put_many overflows,
        # and a key can be inserted, evicted and re-inserted inside ONE
        # batch -- the sequential eviction schedule must be reproduced
        # event for event.
        rng = np.random.default_rng(77 + seed)
        cache = HotKeyCache(4)
        oracle = OracleLRU(4)
        drive(cache, oracle, rng, steps=150, universe=10, batch_max=13)

    def test_capacity_one_duplicate_batch(self):
        cache = HotKeyCache(1)
        oracle = OracleLRU(1)
        values = [object() for __ in range(4)]
        keys = ["a", "b", "a", "a"]
        cache.put_many(keys, values)
        for key, value in zip(keys, values):
            oracle.put(key, value)
        assert_equivalent(cache, oracle)
        assert cache.keys() == ("a",)
        assert cache.peek("a") is values[-1]

    def test_bulk_equals_scalar_sequences(self):
        # The same op stream issued bulk on one cache and scalar on
        # another must leave identical observable state.
        rng = np.random.default_rng(5)
        bulk = HotKeyCache(8)
        scalar = HotKeyCache(8)
        for __ in range(60):
            keys = [int(key) for key in rng.integers(0, 20, 9)]
            values = [object() for __ in keys]
            bulk.put_many(keys, values)
            for key, value in zip(keys, values):
                scalar.put(key, value)
            probes = [int(key) for key in rng.integers(0, 20, 7)]
            got, found = bulk.get_many(probes, default=_ABSENT)
            for position, key in enumerate(probes):
                want = scalar.get(key, _ABSENT)
                assert got[position] is want
                assert bool(found[position]) == (want is not _ABSENT)
            drops = [int(key) for key in rng.integers(0, 20, 3)]
            assert bulk.invalidate_many(drops) == sum(
                scalar.invalidate(key) for key in drops
            )
            assert bulk.keys() == scalar.keys()
            assert (bulk.hits, bulk.misses, bulk.evictions) == (
                scalar.hits,
                scalar.misses,
                scalar.evictions,
            )


class TestBulkSurfaces:
    def test_get_many_shapes_and_defaults(self):
        cache = HotKeyCache(8)
        cache.put_many(["a", "b"], [1, None])
        values, found = cache.get_many(["a", "b", "ghost"])
        assert list(found) == [True, True, False]
        assert values[0] == 1
        assert values[1] is None  # cached None is a hit, not a default
        assert values[2] is None
        values, found = cache.get_many(["ghost"], default="d")
        assert values[0] == "d" and not found[0]
        values, found = cache.get_many([])
        assert values.shape == (0,) and found.shape == (0,)

    def test_get_many_duplicate_key_counts_each_position(self):
        cache = HotKeyCache(4)
        cache.put("k", "v")
        values, found = cache.get_many(["k", "k", "nope"])
        assert cache.hits == 2 and cache.misses == 1
        assert list(found) == [True, True, False]

    def test_put_many_rejects_misaligned_batches(self):
        cache = HotKeyCache(4)
        with pytest.raises(ValueError, match="aligned"):
            cache.put_many(["a"], [1, 2])

    def test_put_many_array_values_stay_intact(self):
        # Stored values may be numpy arrays; the scatter must never
        # broadcast them elementwise.
        cache = HotKeyCache(4)
        payload = [np.arange(3), np.arange(5)]
        cache.put_many(["a", "b"], payload)
        assert cache.peek("a") is payload[0]
        assert cache.peek("b") is payload[1]
        values, found = cache.get_many(["b"])
        assert values[0] is payload[1] and found[0]

    def test_key_set_is_membership_view(self):
        cache = HotKeyCache(4)
        cache.put_many(["a", "b"], [1, 2])
        assert cache.key_set() == {"a", "b"}
        cache.invalidate("a")
        assert cache.key_set() == {"b"}
