"""Tests for the serving metrics accumulator and snapshot."""

import pytest

from repro.serve import ServingMetrics


class TestOps:
    def test_requests_sums_verbs(self):
        metrics = ServingMetrics()
        metrics.observe_ops(gets=3, puts=2, deletes=1)
        assert metrics.requests == 6
        assert (metrics.gets, metrics.puts, metrics.deletes) == (3, 2, 1)


class TestBatches:
    def test_histogram_buckets_are_powers_of_two(self):
        metrics = ServingMetrics()
        for size in (1, 2, 3, 4, 5, 200, 256):
            metrics.observe_batch(size)
        histogram = metrics.batch_histogram()
        # bucket 2**b counts sizes in (2**(b-1), 2**b]
        assert histogram[1] == 1
        assert histogram[2] == 1
        assert histogram[4] == 2
        assert histogram[8] == 1
        assert histogram[256] == 2

    def test_zero_size_batches_ignored(self):
        metrics = ServingMetrics()
        metrics.observe_batch(0)
        assert metrics.batches == 0

    def test_mean_and_max(self):
        metrics = ServingMetrics()
        metrics.observe_batch(10, busy_seconds=0.5)
        metrics.observe_batch(30, busy_seconds=0.5)
        snapshot = metrics.snapshot()
        assert snapshot.mean_batch == 20.0
        assert snapshot.max_batch == 30


class TestLatencies:
    def test_percentiles_in_seconds(self):
        metrics = ServingMetrics()
        metrics.observe_latencies([0.001] * 99 + [0.1])
        p50, p99 = metrics.latency_percentiles(50.0, 99.0)
        assert p50 == pytest.approx(0.001)
        assert p99 >= 0.001

    def test_no_samples_is_zero(self):
        metrics = ServingMetrics()
        assert metrics.latency_percentiles(50.0, 99.0) == (0.0, 0.0)

    def test_sample_pool_is_capped(self):
        metrics = ServingMetrics(max_samples=10)
        metrics.observe_latencies([1.0] * 8)
        metrics.observe_latencies([2.0] * 8)  # only 2 join the pool
        assert metrics._samples == 10
        metrics.observe_latencies([3.0])  # pool full: dropped
        assert metrics._samples == 10


class TestSnapshot:
    def test_throughput_is_requests_per_busy_second(self):
        metrics = ServingMetrics()
        metrics.observe_ops(gets=100)
        metrics.observe_batch(100, busy_seconds=0.5)
        assert metrics.snapshot().throughput_rps == pytest.approx(200.0)

    def test_hit_rate_and_invalidation_accounting(self):
        metrics = ServingMetrics()
        metrics.observe_cache(hits=3, misses=1)
        metrics.observe_invalidation(5)
        metrics.observe_invalidation(7, flush=True)
        snapshot = metrics.snapshot()
        assert snapshot.hit_rate == pytest.approx(0.75)
        assert snapshot.invalidated_keys == 12
        assert snapshot.cache_flushes == 1

    def test_describe_mentions_the_headline_numbers(self):
        metrics = ServingMetrics()
        metrics.observe_ops(gets=4)
        metrics.observe_batch(4, busy_seconds=0.001)
        text = metrics.snapshot().describe()
        assert "4 requests" in text and "p99" in text
