"""Tests for the serving front-end and the epoch-exact invalidator."""

import asyncio

from repro.hashing import make_table
from repro.serve import EpochInvalidator, HotKeyCache, ServingFrontend, ServingMetrics
from repro.service import ClusterRouter, Router
from repro.store import DataPlane


def tracked_stack(name="consistent", servers=6, keys=400, seed=3):
    router = Router(make_table(name, seed=seed))
    router.sync(["srv-{}".format(index) for index in range(servers)])
    plane = DataPlane(router)
    population = list(range(keys))
    plane.put_many(population, population)
    plane.track()
    return router, plane, population


class TestEpochInvalidator:
    def test_exact_eviction_when_tracked(self):
        router, plane, population = tracked_stack()
        cache = HotKeyCache(1_024)
        for key in population:
            cache.put(key, key)
        metrics = ServingMetrics()
        router.subscribe(EpochInvalidator(cache, router, metrics=metrics))
        result = router.join("srv-new")
        moved = {key for batch in result.plan.batches for key in batch.keys}
        assert moved  # the epoch must have remapped something
        assert set(cache.keys()) == set(population) - moved
        assert metrics.invalidated_keys == len(moved)
        assert metrics.cache_flushes == 0

    def test_blanket_flush_when_untracked(self):
        router = Router(make_table("consistent", seed=3))
        router.sync(["a", "b", "c"])
        cache = HotKeyCache(64)
        cache.put("k", 1)
        metrics = ServingMetrics()
        router.subscribe(EpochInvalidator(cache, router, metrics=metrics))
        router.join("d")  # no probe population: unknowable remap set
        assert len(cache) == 0
        assert metrics.cache_flushes == 1

    def test_leave_epoch_also_exact(self):
        router, plane, population = tracked_stack()
        cache = HotKeyCache(1_024)
        for key in population[:100]:
            cache.put(key, key)
        router.subscribe(EpochInvalidator(cache, router))
        plane.track()
        result = router.leave("srv-0")
        moved = {key for batch in result.plan.batches for key in batch.keys}
        assert set(cache.keys()) == set(population[:100]) - moved


class TestServingFrontendSync:
    def test_subscribes_per_shard_for_clusters(self):
        cluster = ClusterRouter("consistent", n_shards=3, seed=3)
        cluster.sync(["a", "b", "c", "d"])
        plane = DataPlane(cluster)
        population = list(range(500))
        plane.put_many(population, population)
        plane.track()
        frontend = ServingFrontend(plane)
        for key in population:
            frontend.cache.put(key, key)
        results = cluster.sync(["a", "b", "c", "d", "e"])
        moved = {key for batch in results.plan.batches for key in batch.keys}
        assert set(frontend.cache.keys()) == set(population) - moved
        assert frontend.metrics.cache_flushes == 0
        frontend.close()

    def test_close_detaches_invalidators(self):
        router, plane, population = tracked_stack()
        frontend = ServingFrontend(plane)
        frontend.cache.put(population[0], population[0])
        frontend.close()
        plane.track()
        router.join("srv-new")
        # no invalidator attached: the entry survives regardless
        assert len(frontend.cache) == 1


class TestServingFrontendAsync:
    def test_roundtrip_under_running_loop(self):
        async def scenario():
            router, plane, population = tracked_stack()
            frontend = ServingFrontend(plane, max_batch=16, max_delay=0.002)
            frontend.start()
            assert frontend.running
            owner = await frontend.put("fresh", "value")
            assert owner in router.server_ids
            assert await frontend.get("fresh") == "value"
            assert await frontend.lookup("ghost") == (False, None)
            assert await frontend.delete("fresh") is True
            assert await frontend.get("fresh", "gone") == "gone"
            await frontend.stop()
            assert not frontend.running
            frontend.close()

        asyncio.run(scenario())

    def test_start_twice_rejected(self):
        async def scenario():
            __, plane, __ = tracked_stack()
            frontend = ServingFrontend(plane)
            frontend.start()
            try:
                frontend.start()
            except RuntimeError as error:
                assert "already running" in str(error)
            else:  # pragma: no cover - the assertion above must fire
                raise AssertionError("second start() should be rejected")
            await frontend.stop()
            frontend.close()

        asyncio.run(scenario())

    def test_stop_flushes_pending(self):
        async def scenario():
            __, plane, __ = tracked_stack()
            # Deadline far away: only stop()'s drain can serve these.
            frontend = ServingFrontend(plane, max_batch=1_000, max_delay=60.0)
            frontend.start()
            futures = [
                frontend.put("key-{}".format(index), index) for index in range(5)
            ]
            pending = asyncio.gather(*futures)
            await asyncio.sleep(0)  # let the submits enqueue
            await frontend.stop()
            await asyncio.wait_for(pending, timeout=5.0)
            assert plane.get("key-4") == 4
            frontend.close()

        asyncio.run(scenario())
