"""Tests for the hot-key LRU cache and its invalidation surface."""

import pytest

from repro.serve import HotKeyCache


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            HotKeyCache(0)

    def test_get_put_roundtrip(self):
        cache = HotKeyCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_default(self):
        cache = HotKeyCache(4)
        assert cache.get("nope") is None
        assert cache.get("nope", 42) == 42

    def test_cached_none_is_not_a_miss(self):
        cache = HotKeyCache(4)
        cache.put("a", None)
        sentinel = object()
        assert cache.get("a", sentinel) is None
        assert cache.hits == 1 and cache.misses == 0

    def test_put_refreshes_value(self):
        cache = HotKeyCache(4)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1


class TestLRU:
    def test_evicts_least_recently_used(self):
        cache = HotKeyCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts a
        assert "a" not in cache
        assert cache.keys() == ("b", "c")
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = HotKeyCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # evicts b, not a
        assert "a" in cache and "b" not in cache

    def test_peek_does_not_refresh_recency_or_counters(self):
        cache = HotKeyCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("zzz", "d") == "d"
        assert cache.hits == 0 and cache.misses == 0
        cache.put("c", 3)  # a is still LRU -> evicted
        assert "a" not in cache


class TestCounters:
    def test_hit_rate(self):
        cache = HotKeyCache(4)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate == 0.5


class TestInvalidation:
    def test_invalidate_single(self):
        cache = HotKeyCache(4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert "a" not in cache
        assert cache.invalidations == 1

    def test_invalidate_keys_counts_only_cached(self):
        cache = HotKeyCache(8)
        for key in "abcd":
            cache.put(key, key)
        evicted = cache.invalidate_keys(["a", "c", "x", "y"])
        assert evicted == 2
        assert cache.keys() == ("b", "d")
        assert cache.invalidations == 2

    def test_invalidate_keys_leaves_rest_warm(self):
        cache = HotKeyCache(8)
        for key in range(6):
            cache.put(key, key * 10)
        cache.invalidate_keys([1, 3])
        for key in (0, 2, 4, 5):
            assert cache.peek(key) == key * 10

    def test_flush_drops_everything(self):
        cache = HotKeyCache(8)
        for key in range(5):
            cache.put(key, key)
        assert cache.flush() == 5
        assert len(cache) == 0
        assert cache.invalidations == 5
