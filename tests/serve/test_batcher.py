"""Tests for the micro-batcher: dispatch core, semantics, asyncio loop."""

import asyncio

import pytest

from repro.hashing import make_table
from repro.serve import HotKeyCache, MicroBatcher, Request, RequestQueue
from repro.service import Router
from repro.store import DataPlane


def build_plane(servers=6, seed=3):
    router = Router(make_table("consistent", seed=seed))
    router.sync(["srv-{}".format(index) for index in range(servers)])
    return DataPlane(router)


def build_batcher(**kwargs):
    plane = build_plane()
    kwargs.setdefault("cache", HotKeyCache(64))
    return MicroBatcher(plane, **kwargs), plane


class TestRequestQueue:
    def test_fifo_take(self):
        queue = RequestQueue()
        for index in range(5):
            queue.append(Request("get", index))
        assert [request.key for request in queue.take(3)] == [0, 1, 2]
        assert len(queue) == 2

    def test_head_is_oldest(self):
        queue = RequestQueue()
        queue.append(Request("get", "old"))
        queue.append(Request("get", "new"))
        assert queue.head().key == "old"


class TestRequest:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            Request("frobnicate", "k")


class TestValidation:
    def test_bad_knobs_rejected(self):
        plane = build_plane()
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(plane, max_batch=0)
        with pytest.raises(ValueError, match="max_delay"):
            MicroBatcher(plane, max_delay=-1.0)


class TestSyncCore:
    def test_gets_fill_then_hit_the_cache(self):
        batcher, plane = build_batcher()
        plane.put_many(list(range(10)), list(range(10)))
        values, found = batcher.serve_gets(list(range(10)))
        assert found.all() and list(values) == list(range(10))
        assert batcher.cache.hits == 0
        values, found = batcher.serve_gets(list(range(10)))
        assert found.all()
        assert batcher.cache.hits == 10

    def test_missing_keys_reported_not_cached(self):
        batcher, __ = build_batcher()
        values, found = batcher.serve_gets(["ghost"])
        assert not found.any() and values[0] is None
        assert "ghost" not in batcher.cache

    def test_put_is_write_through(self):
        batcher, plane = build_batcher()
        batcher.serve_puts(["k"], ["v1"])
        assert batcher.cache.peek("k") == "v1"
        batcher.serve_puts(["k"], ["v2"])
        assert batcher.cache.peek("k") == "v2"
        assert plane.get("k") == "v2"

    def test_delete_evicts_and_reports(self):
        batcher, plane = build_batcher()
        batcher.serve_puts(["k"], ["v"])
        deleted = batcher.serve_deletes(["k", "ghost"])
        assert list(deleted) == [True, False]
        assert "k" not in batcher.cache
        assert plane.get("k", None) is None

    def test_cacheless_batcher_still_serves(self):
        plane = build_plane()
        batcher = MicroBatcher(plane, cache=None)
        plane.put("k", "v")
        values, found = batcher.serve_gets(["k"])
        assert found[0] and values[0] == "v"


class TestBatchSemantics:
    def test_reads_observe_pre_batch_state(self):
        # A get, a delete and a put of the SAME key in one batch: the
        # get must see the pre-batch value, the delete the pre-batch
        # entry, and the put must win the final state.
        batcher, plane = build_batcher()
        plane.put("k", "before")
        batch = [
            Request("put", "k", "after"),
            Request("get", "k"),
            Request("delete", "k"),
        ]
        batcher.dispatch(batch)
        # order of application: gets -> deletes -> puts
        assert plane.get("k") == "after"
        assert batcher.cache.peek("k") == "after"

    def test_dispatch_resolves_metrics(self):
        batcher, plane = build_batcher()
        plane.put("k", "v")
        batcher.dispatch([Request("get", "k"), Request("put", "j", 1)])
        assert batcher.metrics.requests == 2
        assert batcher.metrics.batches == 1

    def test_flush_takes_at_most_max_batch(self):
        batcher, __ = build_batcher(max_batch=4)
        for index in range(10):
            batcher._queue.append(Request("put", index, index))
        assert batcher.flush() == 4
        assert batcher.pending == 6
        assert batcher.drain() == 6
        assert batcher.pending == 0


class TestAsyncLoop:
    def test_flush_on_size(self):
        async def scenario():
            batcher, plane = build_batcher(max_batch=4, max_delay=60.0)
            task = asyncio.get_running_loop().create_task(batcher.run())
            futures = [batcher.submit("put", index, index * 2) for index in range(4)]
            owners = await asyncio.wait_for(asyncio.gather(*futures), timeout=5.0)
            assert len(owners) == 4
            assert plane.get(3) == 6
            batcher.stop()
            await task

        asyncio.run(scenario())

    def test_flush_on_deadline(self):
        async def scenario():
            batcher, plane = build_batcher(max_batch=1_000, max_delay=0.01)
            task = asyncio.get_running_loop().create_task(batcher.run())
            plane.put("k", "v")
            found, value = await asyncio.wait_for(
                batcher.submit("get", "k"), timeout=5.0
            )
            assert found and value == "v"
            batcher.stop()
            await task

        asyncio.run(scenario())

    def test_get_resolution_shape(self):
        async def scenario():
            batcher, plane = build_batcher(max_batch=2, max_delay=0.005)
            task = asyncio.get_running_loop().create_task(batcher.run())
            plane.put("k", "v")
            hit, miss = await asyncio.wait_for(
                asyncio.gather(
                    batcher.submit("get", "k"),
                    batcher.submit("get", "ghost"),
                ),
                timeout=5.0,
            )
            assert hit == (True, "v")
            assert miss == (False, None)
            deleted = await asyncio.wait_for(batcher.submit("delete", "k"), timeout=5.0)
            assert deleted is True
            batcher.stop()
            await task

        asyncio.run(scenario())

    def test_run_twice_rejected(self):
        async def scenario():
            batcher, __ = build_batcher()
            task = asyncio.get_running_loop().create_task(batcher.run())
            await asyncio.sleep(0)  # let run() start
            with pytest.raises(RuntimeError, match="already running"):
                await batcher.run()
            batcher.stop()
            await task

        asyncio.run(scenario())
