"""Tests for the async serving tier."""
