"""The serving tier's invalidation guarantee, over every algorithm.

After ANY membership mutation (``join`` / ``leave`` / ``sync``) on a
tracked router, exactly the remapped keys leave the hot-key cache --
no blanket flush, nothing extra evicted -- and every read served
through the cache afterwards still matches ``DataPlane.get``.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing import make_table, registered_algorithms
from repro.serve import EpochInvalidator, HotKeyCache, MicroBatcher, ServingMetrics
from repro.service import Router
from repro.store import DataPlane

#: Small constructor configs so the expensive tables stay fast here.
_CONFIGS = {
    "hd": {"dim": 256, "codebook_size": 64},
    "maglev": {"table_size": 251},
}

_KEYS = 400


def build_tier(name, servers=6, seed=5):
    router = Router(make_table(name, seed=seed, **_CONFIGS.get(name, {})))
    router.sync(["srv-{:02d}".format(index) for index in range(servers)])
    plane = DataPlane(router)
    population = list(range(_KEYS))
    plane.put_many(population, population)
    cache = HotKeyCache(2 * _KEYS)
    metrics = ServingMetrics()
    batcher = MicroBatcher(plane, cache=cache, metrics=metrics)
    router.subscribe(EpochInvalidator(cache, router, metrics=metrics))
    # Warm the cache through the read path, then install the stored
    # keys as the probe population (the invalidation contract's
    # precondition, normally maintained by the control loop's tick).
    batcher.serve_gets(population)
    plane.track()
    return router, plane, batcher, population


def moved_keys(result):
    if result is None:
        return set()
    return {int(key) for batch in result.plan.batches for key in batch.keys}


def check_epoch(router, plane, batcher, population, mutate):
    cached_before = {int(key) for key in batcher.cache.keys()}
    flushes_before = batcher.metrics.cache_flushes
    moved = moved_keys(mutate())
    # exactly the remapped keys left the cache, and no blanket flush
    assert {int(key) for key in batcher.cache.keys()} == cached_before - moved
    assert batcher.metrics.cache_flushes == flushes_before
    # every cached read still matches the plane, for the whole
    # population (hits and misses alike)
    values, found = batcher.serve_gets(population)
    for key, value, present in zip(population, values, found):
        assert bool(present) == (plane.get(key, None) is not None)
        if present:
            assert value == plane.get(key)


@pytest.mark.parametrize("name", registered_algorithms())
class TestEveryAlgorithm:
    def test_join_evicts_exactly_the_remapped_keys(self, name):
        router, plane, batcher, population = build_tier(name)
        check_epoch(router, plane, batcher, population, lambda: router.join("srv-new"))

    def test_leave_evicts_exactly_the_remapped_keys(self, name):
        router, plane, batcher, population = build_tier(name)
        check_epoch(router, plane, batcher, population, lambda: router.leave("srv-00"))

    def test_sync_evicts_exactly_the_remapped_keys(self, name):
        router, plane, batcher, population = build_tier(name)
        # one join + one leave in a single declarative epoch
        target = [
            server_id for server_id in router.server_ids if server_id != "srv-01"
        ] + ["srv-new"]
        check_epoch(router, plane, batcher, population, lambda: router.sync(target))


class TestMutationSequences:
    @given(
        steps=st.lists(
            st.sampled_from(["join", "leave", "sync-grow", "sync-shrink"]),
            min_size=1,
            max_size=6,
        )
    )
    def test_random_epoch_sequences_stay_exact(self, steps):
        router, plane, batcher, population = build_tier("consistent")
        next_id = 100
        for step in steps:
            if router.server_count <= 2 and step in ("leave", "sync-shrink"):
                continue
            if step == "join":
                joiner = "srv-{:02d}".format(next_id)
                next_id += 1
                mutate = lambda joiner=joiner: router.join(joiner)
            elif step == "leave":
                victim = router.server_ids[0]
                mutate = lambda victim=victim: router.leave(victim)
            elif step == "sync-grow":
                target = list(router.server_ids) + ["srv-{:02d}".format(next_id)]
                next_id += 1
                mutate = lambda target=target: router.sync(target)
            else:
                target = list(router.server_ids)[1:]
                mutate = lambda target=target: router.sync(target)
            check_epoch(router, plane, batcher, population, mutate)
            # keep the contract's precondition current, as the control
            # loop's tick does before every epoch it applies
            plane.track()
