"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import REGISTRY, main


class TestList:
    def test_lists_every_artefact(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        for name in REGISTRY:
            assert name in text

    def test_registry_covers_paper_figures(self):
        assert {"fig2", "fig4", "fig5", "fig6", "mcu"} <= set(REGISTRY)


class TestRoute:
    def test_route_with_replicas_prints_sets(self):
        out = io.StringIO()
        code = main(
            ["route", "consistent", "--servers", "6", "--requests", "3",
             "--replicas", "3"],
            out=out,
        )
        assert code == 0
        lines = [
            line for line in out.getvalue().splitlines() if "->" in line
        ]
        assert len(lines) == 3
        for line in lines:
            servers = line.split("->")[1].split(",")
            assert len(servers) == 3
            assert len(set(s.strip() for s in servers)) == 3

    def test_route_replicas_above_pool_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["route", "modular", "--servers", "3", "--replicas", "4"],
                out=io.StringIO(),
            )


class TestCluster:
    def test_cluster_routes_and_names_shards(self):
        out = io.StringIO()
        code = main(
            ["cluster", "modular", "--shards", "3", "--servers", "6",
             "--requests", "4"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "x3 shards" in text
        assert text.count("shard ") >= 4

    def test_cluster_failover_prints_reroute(self):
        out = io.StringIO()
        code = main(
            ["cluster", "consistent", "--shards", "2", "--servers", "4",
             "--requests", "6", "--avoid", "server-01"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "failover:" in text
        for line in text.splitlines():
            if "failover:" in line:
                assert "failover: server-01" not in line

    def test_cluster_unknown_avoid_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["cluster", "modular", "--servers", "4", "--avoid", "ghost"],
                out=io.StringIO(),
            )

    def test_cluster_bad_option_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["cluster", "hd", "-o", "warp=1"],
                out=io.StringIO(),
            )


class TestRun:
    def test_run_costmodel_fast(self):
        out = io.StringIO()
        assert main(["run", "costmodel", "--profile", "fast"], out=out) == 0
        assert "hdc-accelerator" in out.getvalue()

    def test_run_remap_fast(self):
        out = io.StringIO()
        assert main(["run", "remap", "--profile", "fast"], out=out) == 0
        assert "modular" in out.getvalue()

    def test_csv_export(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "costs.csv"
        code = main(
            ["run", "costmodel", "--profile", "fast", "--csv", str(path)],
            out=out,
        )
        assert code == 0
        header = path.read_text().splitlines()[0]
        assert header == "machine,algorithm,servers,cycles"

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"], out=io.StringIO())

    def test_invalid_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--profile", "warp"], out=io.StringIO())

    def test_all_with_csv_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["run", "all", "--profile", "fast", "--csv", "x.csv"],
                out=io.StringIO(),
            )
