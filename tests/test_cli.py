"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import REGISTRY, main


class TestList:
    def test_lists_every_artefact(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        for name in REGISTRY:
            assert name in text

    def test_registry_covers_paper_figures(self):
        assert {"fig2", "fig4", "fig5", "fig6", "mcu"} <= set(REGISTRY)


class TestRun:
    def test_run_costmodel_fast(self):
        out = io.StringIO()
        assert main(["run", "costmodel", "--profile", "fast"], out=out) == 0
        assert "hdc-accelerator" in out.getvalue()

    def test_run_remap_fast(self):
        out = io.StringIO()
        assert main(["run", "remap", "--profile", "fast"], out=out) == 0
        assert "modular" in out.getvalue()

    def test_csv_export(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "costs.csv"
        code = main(
            ["run", "costmodel", "--profile", "fast", "--csv", str(path)],
            out=out,
        )
        assert code == 0
        header = path.read_text().splitlines()[0]
        assert header == "machine,algorithm,servers,cycles"

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"], out=io.StringIO())

    def test_invalid_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--profile", "warp"], out=io.StringIO())

    def test_all_with_csv_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["run", "all", "--profile", "fast", "--csv", "x.csv"],
                out=io.StringIO(),
            )
