"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import REGISTRY, main


class TestList:
    def test_lists_every_artefact(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        for name in REGISTRY:
            assert name in text

    def test_registry_covers_paper_figures(self):
        assert {"fig2", "fig4", "fig5", "fig6", "mcu"} <= set(REGISTRY)


class TestRoute:
    def test_route_with_replicas_prints_sets(self):
        out = io.StringIO()
        code = main(
            ["route", "consistent", "--servers", "6", "--requests", "3",
             "--replicas", "3"],
            out=out,
        )
        assert code == 0
        lines = [
            line for line in out.getvalue().splitlines() if "->" in line
        ]
        assert len(lines) == 3
        for line in lines:
            servers = line.split("->")[1].split(",")
            assert len(servers) == 3
            assert len(set(s.strip() for s in servers)) == 3

    def test_route_replicas_above_pool_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["route", "modular", "--servers", "3", "--replicas", "4"],
                out=io.StringIO(),
            )


class TestCluster:
    def test_cluster_routes_and_names_shards(self):
        out = io.StringIO()
        code = main(
            ["cluster", "modular", "--shards", "3", "--servers", "6",
             "--requests", "4"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "x3 shards" in text
        assert text.count("shard ") >= 4

    def test_cluster_failover_prints_reroute(self):
        out = io.StringIO()
        code = main(
            ["cluster", "consistent", "--shards", "2", "--servers", "4",
             "--requests", "6", "--avoid", "server-01"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "failover:" in text
        for line in text.splitlines():
            if "failover:" in line:
                assert "failover: server-01" not in line

    def test_cluster_unknown_avoid_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["cluster", "modular", "--servers", "4", "--avoid", "ghost"],
                out=io.StringIO(),
            )

    def test_cluster_bad_option_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["cluster", "hd", "-o", "warp=1"],
                out=io.StringIO(),
            )


class TestMigrate:
    def test_plan_only_moves_no_data(self):
        out = io.StringIO()
        code = main(
            ["migrate", "modular", "--servers", "6", "--target", "8",
             "--keys", "500", "--plan-only"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "plan:" in text
        assert "moved fraction" in text
        assert "plan-only: no data moved" in text
        assert "OK:" not in text

    def test_execute_migrates_and_verifies(self):
        out = io.StringIO()
        code = main(
            ["migrate", "consistent", "--servers", "6", "--target", "9",
             "--keys", "400", "--max-keys-per-tick", "100"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "OK:" in text
        assert "ownership-verified" in text
        assert "readable at their routed owner" in text

    def test_shrink_is_supported(self):
        out = io.StringIO()
        code = main(
            ["migrate", "consistent", "--servers", "8", "--target", "5",
             "--keys", "300"],
            out=out,
        )
        assert code == 0
        assert "OK:" in out.getvalue()

    def test_noop_target_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["migrate", "modular", "--servers", "4", "--target", "4"],
                out=io.StringIO(),
            )

    def test_bad_throttle_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["migrate", "modular", "--max-keys-per-tick", "0"],
                out=io.StringIO(),
            )
        with pytest.raises(SystemExit):
            main(
                ["migrate", "modular", "--status-every", "0"],
                out=io.StringIO(),
            )


class TestRun:
    def test_run_costmodel_fast(self):
        out = io.StringIO()
        assert main(["run", "costmodel", "--profile", "fast"], out=out) == 0
        assert "hdc-accelerator" in out.getvalue()

    def test_run_remap_fast(self):
        out = io.StringIO()
        assert main(["run", "remap", "--profile", "fast"], out=out) == 0
        assert "modular" in out.getvalue()

    def test_csv_export(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "costs.csv"
        code = main(
            ["run", "costmodel", "--profile", "fast", "--csv", str(path)],
            out=out,
        )
        assert code == 0
        header = path.read_text().splitlines()[0]
        assert header == "machine,algorithm,servers,cycles"

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"], out=io.StringIO())

    def test_invalid_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--profile", "warp"], out=io.StringIO())

    def test_all_with_csv_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["run", "all", "--profile", "fast", "--csv", "x.csv"],
                out=io.StringIO(),
            )


class TestAlgorithmsListing:
    def test_capability_flags_printed(self):
        out = io.StringIO()
        assert main(["algorithms"], out=out) == 0
        text = out.getvalue()
        lines = {
            line.split()[0]: line for line in text.splitlines() if line
        }
        # Weight-capable tables are flagged; weight-blind ones are not.
        assert "weighted" in lines["weighted-rendezvous"]
        assert "weighted," in lines["weighted"]
        assert "weighted" not in lines["modular"].split("]")[1].split("]")[0]
        # Every registered algorithm advertises its batch/replica paths.
        for name, line in lines.items():
            assert "batch-native" in line
            assert "replica-native" in line
        # Membership/epoch kernels surface as derived flags too: bulk
        # join/leave kernels and the delta-scoped epoch-close kernels.
        assert "churn-incremental" in lines["weighted"]
        assert "delta-close" in lines["weighted"]
        assert "delta-close" in lines["hd"]
        # Multi-probe overrides the delta kernels only to opt out.
        assert "churn-incremental" in lines["multiprobe-consistent"]
        assert "delta-close" not in lines["multiprobe-consistent"]
        assert "churn-incremental" not in lines["maglev"]


class TestControl:
    def test_status_prints_weighted_fleet(self):
        out = io.StringIO()
        code = main(
            ["control", "status", "modular", "--keys", "600",
             "--servers", "4", "--weights", "1,2"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "total weight 6.0" in text
        assert "fleet imbalance" in text
        assert "healthy" in text

    def test_tick_plan_only_moves_nothing(self):
        out = io.StringIO()
        code = main(
            ["control", "tick", "consistent", "--plan-only",
             "--keys", "500"],
            out=out,
        )
        assert code == 0

    def test_tick_live(self):
        out = io.StringIO()
        code = main(
            ["control", "tick", "modular", "--keys", "400"], out=out
        )
        assert code == 0

    def test_drain_verifies_invariant(self):
        out = io.StringIO()
        code = main(
            ["control", "drain", "rendezvous", "--keys", "800",
             "--servers", "4"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "drained" in text
        assert "epoch remap count == plan size" in text

    def test_drain_named_server(self):
        out = io.StringIO()
        code = main(
            ["control", "drain", "modular", "--keys", "400",
             "--server", "server-01"],
            out=out,
        )
        assert code == 0
        assert "'server-01'" in out.getvalue()

    def test_unknown_drain_server_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["control", "drain", "modular", "--server", "nope"],
                out=io.StringIO(),
            )

    def test_bad_weights_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["control", "status", "modular", "--weights", "1,zero"],
                out=io.StringIO(),
            )
        with pytest.raises(SystemExit):
            main(
                ["control", "status", "modular", "--weights", "-1,2"],
                out=io.StringIO(),
            )


class TestMigrateImbalance:
    def test_migrate_reports_fleet_imbalance(self):
        out = io.StringIO()
        code = main(
            ["migrate", "modular", "--servers", "4", "--target", "6",
             "--keys", "500"],
            out=out,
        )
        assert code == 0
        assert "fleet imbalance" in out.getvalue()


class TestServeCommand:
    def test_serve_accepts_batching_flag_spellings(self):
        # --max-delay / --cache-capacity are the documented aliases of
        # --max-delay-ms / --cache; both spellings must drive the run.
        out = io.StringIO()
        code = main(
            ["serve", "modular", "--requests", "400", "--no-churn",
             "--max-batch", "64", "--max-delay", "0.5",
             "--cache-capacity", "128"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "OK: serving SLAs met" in text
        assert "batch" in text

    def test_serve_rejects_zero_max_batch(self):
        with pytest.raises(SystemExit, match="--max-batch"):
            main(
                ["serve", "modular", "--max-batch", "0"],
                out=io.StringIO(),
            )

    def test_serve_rejects_negative_delay(self):
        with pytest.raises(SystemExit, match="--max-delay"):
            main(
                ["serve", "modular", "--max-delay", "-1"],
                out=io.StringIO(),
            )

    def test_serve_rejects_zero_cache_capacity(self):
        with pytest.raises(SystemExit, match="--cache-capacity"):
            main(
                ["serve", "modular", "--cache-capacity", "0"],
                out=io.StringIO(),
            )
