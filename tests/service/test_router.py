"""Tests for the Router facade: bulk membership, epochs, observers."""

import numpy as np
import pytest

from repro.errors import (
    DuplicateServerError,
    EmptyTableError,
    UnknownServerError,
)
from repro.hashing import make_table
from repro.service import MembershipUpdate, Router, RouterObserver


def consistent_router(**kwargs):
    return Router(make_table("consistent", seed=1), **kwargs)


class TestMembershipUpdate:
    def test_normalises_to_tuples(self):
        update = MembershipUpdate(joins=["a", "b"], leaves=["c"])
        assert update.joins == ("a", "b")
        assert update.leaves == ("c",)

    def test_dedups_preserving_order(self):
        update = MembershipUpdate(joins=["b", "a", "b"])
        assert update.joins == ("b", "a")

    def test_join_leave_overlap_rejected(self):
        with pytest.raises(ValueError, match="one update"):
            MembershipUpdate(joins=["a"], leaves=["a"])

    def test_is_empty(self):
        assert MembershipUpdate().is_empty
        assert not MembershipUpdate(joins=("a",)).is_empty


class TestApply:
    def test_batch_bumps_epoch_exactly_once(self):
        router = consistent_router()
        record, plan = router.apply(MembershipUpdate(joins=("a", "b", "c")))
        assert router.epoch == 1
        assert record.epoch == 1
        assert record.joined == ("a", "b", "c")
        assert router.server_ids == ("a", "b", "c")

    def test_empty_update_is_epochless_noop(self):
        router = consistent_router()
        assert router.apply(MembershipUpdate()) is None
        assert router.epoch == 0
        assert router.history == ()

    def test_mixed_batch(self):
        router = consistent_router()
        router.apply(MembershipUpdate(joins=("a", "b")))
        record, __ = router.apply(
            MembershipUpdate(joins=("c",), leaves=("a",))
        )
        assert router.epoch == 2
        assert record.left == ("a",)
        assert router.server_ids == ("b", "c")

    def test_invalid_batch_raises_without_side_effects(self):
        router = consistent_router()
        router.apply(MembershipUpdate(joins=("a",)))
        with pytest.raises(DuplicateServerError):
            router.apply(MembershipUpdate(joins=("b", "a")))
        with pytest.raises(UnknownServerError):
            router.apply(MembershipUpdate(joins=("c",), leaves=("ghost",)))
        # nothing mutated, no epoch consumed
        assert router.server_ids == ("a",)
        assert router.epoch == 1
        assert len(router.history) == 1

    def test_mid_batch_capacity_failure_rolls_back_atomically(self):
        from repro.errors import CapacityError

        # A 4-node circle can hold at most 4 servers, so the fifth join
        # of the batch fails *after* earlier joins already mutated.
        router = Router(make_table("hd", seed=1, dim=64, codebook_size=4))
        router.sync(["a", "b"])
        reference = router.route_batch(np.arange(500, dtype=np.uint64))
        with pytest.raises(CapacityError):
            router.sync(["a", "b", "c", "d", "e", "f"])
        assert router.server_ids == ("a", "b")
        assert router.epoch == 1
        assert len(router.history) == 1
        assert np.array_equal(
            router.route_batch(np.arange(500, dtype=np.uint64)), reference
        )
        # and the router still works after the rollback
        record = router.sync(["a", "b", "c"]).record
        assert record.epoch == 2

    def test_records_mutation_time(self):
        router = consistent_router()
        record = router.apply(MembershipUpdate(joins=("a", "b"))).record
        assert record.mutate_seconds >= 0.0

    def test_single_server_conveniences(self):
        router = consistent_router()
        router.join("a")
        router.join("b")
        router.leave("a")
        assert router.server_ids == ("b",)
        assert router.epoch == 3


class TestSync:
    def test_reaches_target_from_empty(self):
        router = consistent_router()
        record, plan = router.sync(["a", "b", "c"])
        assert router.server_ids == ("a", "b", "c")
        assert record.joined == ("a", "b", "c")
        assert record.left == ()
        assert plan.is_empty  # nothing tracked, nothing to move

    def test_minimal_diff(self):
        router = consistent_router()
        router.sync(["a", "b", "c", "d"])
        record = router.sync(["b", "c", "e"]).record
        # Only the difference moved: one join, two leaves, one epoch.
        assert record.joined == ("e",)
        assert set(record.left) == {"a", "d"}
        assert router.epoch == 2
        assert set(router.server_ids) == {"b", "c", "e"}

    def test_noop_sync_does_not_bump_epoch(self):
        router = consistent_router()
        router.sync(["a", "b"])
        assert router.sync(["a", "b"]) is None
        assert router.sync(["b", "a"]) is None  # order is not membership
        assert router.epoch == 1

    def test_sync_to_empty_drains_pool(self):
        router = consistent_router()
        router.sync(["a", "b"])
        record = router.sync([]).record
        assert router.server_count == 0
        assert set(record.left) == {"a", "b"}

    def test_diff_is_pure(self):
        router = consistent_router()
        router.sync(["a", "b"])
        update = router.diff(["b", "c"])
        assert update.joins == ("c",)
        assert update.leaves == ("a",)
        assert router.server_ids == ("a", "b")  # not applied

    def test_sync_fuzz_reaches_arbitrary_targets(self, rng):
        router = consistent_router()
        universe = list(range(40))
        for __ in range(25):
            target = [
                server_id for server_id in universe if rng.random() < 0.4
            ]
            before = router.epoch
            result = router.sync(target)
            assert set(router.server_ids) == set(target)
            if result is None:
                assert router.epoch == before
            else:
                assert router.epoch == before + 1
                # minimality: every event was strictly necessary
                record = result.record
                assert not (set(record.joined) & set(record.left))


class TestObservers:
    def test_events_fire_with_epoch(self):
        events = []

        class Recorder(RouterObserver):
            def on_join(self, server_id, epoch):
                events.append(("join", server_id, epoch))

            def on_leave(self, server_id, epoch):
                events.append(("leave", server_id, epoch))

            def on_remap(self, record):
                events.append(("epoch", record.epoch, record.server_count))

        router = consistent_router(observers=[Recorder()])
        router.sync(["a", "b"])
        router.sync(["b", "c"])
        assert events == [
            ("join", "a", 1),
            ("join", "b", 1),
            ("epoch", 1, 2),
            ("leave", "a", 2),
            ("join", "c", 2),
            ("epoch", 2, 2),
        ]

    def test_subscribe_unsubscribe(self):
        seen = []

        class Counter(RouterObserver):
            def on_remap(self, record):
                seen.append(record.epoch)

        router = consistent_router()
        observer = router.subscribe(Counter())
        router.sync(["a"])
        router.unsubscribe(observer)
        router.sync(["a", "b"])
        assert seen == [1]


class TestRemapAccounting:
    def test_probe_fractions_recorded_per_epoch(self):
        probe = np.arange(4_000, dtype=np.uint64)
        router = consistent_router(probe_keys=probe)
        first, first_plan = router.sync(["a", "b", "c", "d"])
        assert first.remapped == 0.0  # no previous assignment to move from
        assert first_plan.is_empty
        record, plan = router.sync(["a", "b", "c", "d", "e"])
        # consistent hashing: the newcomer claims ~1/k of the keys
        assert 0.0 < record.remapped < 0.8
        assert record.probes_moved == int(record.remapped * probe.size)
        # the plan and the accounting come from the same diff
        assert plan.total_keys == record.probes_moved
        assert len(plan.moves) / plan.tracked == record.remap_fraction
        assert all(move.destination == "e" for move in plan.moves)

    def test_modular_remaps_more_than_consistent(self):
        probe = np.arange(4_000, dtype=np.uint64)
        results = {}
        for name in ("modular", "consistent"):
            router = Router(make_table(name, seed=1), probe_keys=probe)
            router.sync(range(8))
            results[name] = router.sync(range(9)).record.remapped
        assert results["modular"] > 2 * results["consistent"]

    def test_no_probes_means_zero_accounting(self):
        router = consistent_router()
        record, plan = router.sync(["a", "b"])
        assert record.remapped == 0.0
        assert record.probes_moved == 0
        assert plan.is_empty and plan.tracked == 0

    def test_routing_passthrough(self):
        router = consistent_router()
        router.sync(["a", "b", "c"])
        assert router.route("key") in router.server_ids
        batch = router.route_batch(np.arange(50, dtype=np.uint64))
        assert set(batch.tolist()) <= set(router.server_ids)
        assert len(router) == 3
        assert "a" in router
        assert "consistent" in repr(router)


class TestRouterSnapshot:
    def test_restore_preserves_epoch_and_routing(self):
        probe = np.arange(2_000, dtype=np.uint64)
        router = Router(
            make_table("hd", seed=2, dim=1_024, codebook_size=128),
            probe_keys=probe,
        )
        router.sync(["a", "b", "c"])
        router.sync(["a", "c", "d"])
        reference = router.route_batch(probe)
        restored = Router.restore(router.snapshot())
        assert restored.epoch == router.epoch
        assert restored.server_ids == router.server_ids
        assert np.array_equal(restored.route_batch(probe), reference)


class TestAvoidMachinery:
    def _router(self):
        router = Router(make_table("rendezvous", seed=8))
        router.sync(["a", "b", "c", "d"])
        return router

    def test_avoid_reroutes_to_first_healthy_replica(self):
        router = self._router()
        keys = list(range(400))
        primaries = {key: router.route(key) for key in keys}
        victim = router.route(0)
        router.avoid(victim)
        assert router.avoided == frozenset({victim})
        for key in keys:
            owner = router.route(key)
            assert owner != victim
            if primaries[key] != victim:
                # Unflagged primaries are untouched.
                assert owner == primaries[key]
            else:
                # Flagged ones shift to the first healthy replica.
                replicas = router.route_replicas(key, 2)
                assert owner == replicas[1]

    def test_route_batch_matches_scalar_under_avoid(self):
        import numpy as np

        router = self._router()
        router.avoid("b")
        keys = list(range(300))
        batch = router.route_batch(keys)
        assert "b" not in set(batch.tolist())
        assert np.array_equal(
            batch, np.asarray([router.route(key) for key in keys], object)
        )

    def test_per_call_avoid_merges_with_persistent(self):
        router = self._router()
        router.avoid("a")
        owners = {router.route(key, avoid={"b"}) for key in range(200)}
        assert owners <= {"c", "d"}

    def test_avoid_requires_membership_and_clears_on_leave(self):
        router = self._router()
        with pytest.raises(UnknownServerError):
            router.avoid("ghost")
        router.avoid("c")
        router.leave("c")
        assert router.avoided == frozenset()

    def test_readmit_lifts_flag(self):
        router = self._router()
        router.avoid("a")
        router.readmit("a")
        assert router.avoided == frozenset()
        router.readmit("a")  # idempotent

    def test_whole_fleet_avoided_raises(self):
        router = self._router()
        with pytest.raises(EmptyTableError):
            router.route(1, avoid={"a", "b", "c", "d"})

    def test_remap_accounting_ignores_avoid(self):
        """The avoid set is routing-level failover; the epoch bill and
        migration plans stay on the table's raw assignment."""
        router = self._router()
        router.track(list(range(1_000)))
        router.avoid("a")
        result = router.join("e")
        assert result is not None
        # The epoch's delta compares raw table assignments, so the
        # moved keys are exactly what the table rerouted -- flagged
        # servers do not inflate the bill.
        assert 0.0 < result.record.remapped < 0.5
