"""Delta-scoped epoch close: the fast path must be bit-exact.

A :class:`~repro.service.migration.DeltaTracker` constructed with its
table closes *named* epochs (``close(joined=..., left=...)``) from
cached winning scores when the algorithm exposes the delta-score
kernels: join epochs sweep each joiner's challenge column against the
cached winners, leave epochs re-route only the departing servers' keys.
That is a promise of bit-exactness, not approximation -- every test
here compares the fast path against a table-less tracker over the same
lookup (which always takes the full tracked-slice re-route) and
requires identical :class:`~repro.service.migration.EpochDelta`
contents: same keys, same sources, same destinations, same order.
"""

import numpy as np
import pytest

from repro.hashing import make_table
from repro.hashing.registry import algorithm_entry, registered_algorithms
from repro.service import Router
from repro.service.migration import DeltaTracker

#: Constructor overrides keeping the expensive tables test-sized.
LIGHT_CONFIGS = {
    "hd": {"dim": 1_024, "codebook_size": 128},
    "maglev": {"table_size": 509},
}

#: Every algorithm advertising the delta-scoped close kernels -- driven
#: off the registry flag so a new delta-native algorithm is covered the
#: moment it lands.
DELTA_ALGORITHMS = [
    name
    for name in registered_algorithms()
    if "delta-close" in algorithm_entry(name).capabilities
]

#: Delta-native algorithms whose ``join`` takes a capacity weight.
WEIGHTED_DELTA_ALGORITHMS = [
    name
    for name in DELTA_ALGORITHMS
    if "weighted" in algorithm_entry(name).capabilities
]


def light_table(name, seed=5):
    return make_table(name, seed=seed, **LIGHT_CONFIGS.get(name, {}))


def tracker_pair(table, keys=4_096):
    """(fast, full) trackers over the same table and probe population.

    The fast tracker knows its table (and so caches winning scores);
    the full tracker does not, which forces the re-route-everything
    path on every close -- the oracle the fast path is checked against.
    """
    key_array = np.arange(keys, dtype=np.int64)
    words = table.words_of_keys(key_array)
    fast = DeltaTracker(table.lookup_words, table=table)
    full = DeltaTracker(table.lookup_words)
    fast.track(key_array, words)
    full.track(key_array.copy(), words.copy())
    return fast, full


def assert_deltas_identical(fast_delta, full_delta):
    assert fast_delta.tracked == full_delta.tracked
    assert np.array_equal(fast_delta.keys, full_delta.keys)
    assert np.array_equal(fast_delta.sources, full_delta.sources)
    assert np.array_equal(fast_delta.destinations, full_delta.destinations)


def fill(table, servers=12):
    ids = ["srv-{:02d}".format(index) for index in range(servers)]
    for server_id in ids:
        table.join(server_id)
    return ids


class TestScopedCloseExactness:
    @pytest.mark.parametrize("name", DELTA_ALGORITHMS)
    def test_grow_epoch_bit_identical(self, name):
        table = light_table(name)
        fill(table)
        fast, full = tracker_pair(table)
        assert fast._scores is not None  # the fast path is armed
        table.join("newcomer")
        fast_delta = fast.close(joined=["newcomer"])
        full_delta = full.close(joined=["newcomer"])
        assert_deltas_identical(fast_delta, full_delta)
        assert fast_delta.moved > 0
        assert set(fast_delta.destinations) == {"newcomer"}

    @pytest.mark.parametrize("name", DELTA_ALGORITHMS)
    def test_shrink_epoch_bit_identical(self, name):
        table = light_table(name)
        ids = fill(table)
        fast, full = tracker_pair(table)
        table.leave(ids[0])
        fast_delta = fast.close(left=[ids[0]])
        full_delta = full.close(left=[ids[0]])
        assert_deltas_identical(fast_delta, full_delta)
        assert fast_delta.moved > 0
        assert set(fast_delta.sources) == {ids[0]}

    @pytest.mark.parametrize("name", DELTA_ALGORITHMS)
    def test_multi_event_epochs_bit_identical(self, name):
        table = light_table(name)
        ids = fill(table)
        fast, full = tracker_pair(table)
        table.join_many(["alpha", "beta"])
        assert_deltas_identical(
            fast.close(joined=["alpha", "beta"]),
            full.close(joined=["alpha", "beta"]),
        )
        table.leave_many([ids[1], "alpha"])
        assert_deltas_identical(
            fast.close(left=[ids[1], "alpha"]),
            full.close(left=[ids[1], "alpha"]),
        )

    @pytest.mark.parametrize("name", DELTA_ALGORITHMS)
    def test_mixed_leave_and_join_epoch_bit_identical(self, name):
        table = light_table(name)
        ids = fill(table)
        fast, full = tracker_pair(table)
        table.leave(ids[2])
        table.join("replacement")
        fast_delta = fast.close(joined=["replacement"], left=[ids[2]])
        full_delta = full.close(joined=["replacement"], left=[ids[2]])
        assert_deltas_identical(fast_delta, full_delta)

    @pytest.mark.parametrize("name", WEIGHTED_DELTA_ALGORITHMS)
    def test_weight_change_epochs_bit_identical(self, name):
        # A weight change is two epochs (the router forbids one id in
        # both sides of a batch): drain the member, re-admit it heavier.
        table = light_table(name)
        ids = fill(table)
        fast, full = tracker_pair(table)
        table.leave(ids[3])
        assert_deltas_identical(
            fast.close(left=[ids[3]]), full.close(left=[ids[3]])
        )
        table.join(ids[3], weight=4.0)
        fast_delta = fast.close(joined=[ids[3]])
        full_delta = full.close(joined=[ids[3]])
        assert_deltas_identical(fast_delta, full_delta)
        assert fast_delta.moved > 0  # 4x the capacity pulls keys in

    @pytest.mark.parametrize("name", DELTA_ALGORITHMS)
    def test_random_epoch_sequences_bit_identical(self, name):
        # Random grow/shrink schedules: the cached-score baseline must
        # stay exact across *chains* of scoped closes, not just one.
        rng = np.random.default_rng(17)
        table = light_table(name)
        ids = fill(table, servers=10)
        pool = list(ids)
        fast, full = tracker_pair(table, keys=2_048)
        next_id = 0
        for __ in range(16):
            if len(pool) <= 3 or rng.random() < 0.5:
                joiner = "dyn-{:03d}".format(next_id)
                next_id += 1
                table.join(joiner)
                pool.append(joiner)
                events = {"joined": [joiner]}
            else:
                leaver = pool.pop(int(rng.integers(len(pool))))
                table.leave(leaver)
                events = {"left": [leaver]}
            assert_deltas_identical(fast.close(**events), full.close(**events))


class TestScopedCloseIsActuallyScoped:
    """Exactness alone could be satisfied by silently recomputing --
    pin down that the fast path does delta-sized work."""

    @pytest.mark.parametrize("name", DELTA_ALGORITHMS)
    def test_join_close_never_reroutes(self, name):
        table = light_table(name)
        fill(table)
        calls = []

        def counting_lookup(words):
            calls.append(words.size)
            return table.lookup_words(words)

        keys = np.arange(2_048, dtype=np.int64)
        tracker = DeltaTracker(counting_lookup, table=table)
        tracker.track(keys, table.words_of_keys(keys))
        calls.clear()
        table.join("newcomer")
        delta = tracker.close(joined=["newcomer"])
        assert delta.moved > 0
        assert calls == []  # one challenge column, zero re-routes

    @pytest.mark.parametrize("name", DELTA_ALGORITHMS)
    def test_leave_close_reroutes_only_stranded_keys(self, name):
        table = light_table(name)
        ids = fill(table)
        calls = []

        def counting_lookup(words):
            calls.append(words.size)
            return table.lookup_words(words)

        keys = np.arange(2_048, dtype=np.int64)
        tracker = DeltaTracker(counting_lookup, table=table)
        tracker.track(keys, table.words_of_keys(keys))
        calls.clear()
        table.leave(ids[0])
        delta = tracker.close(left=[ids[0]])
        assert calls == [delta.moved]  # exactly the departed slice

    def test_opted_out_algorithm_falls_back_to_full_recompute(self):
        # Multi-probe overrides the kernels only to opt out; a named
        # close must quietly take the full path and stay correct.
        table = light_table("multiprobe-consistent")
        fill(table)
        fast, full = tracker_pair(table)
        assert fast._scores is None
        table.join("newcomer")
        assert_deltas_identical(
            fast.close(joined=["newcomer"]), full.close(joined=["newcomer"])
        )

    @pytest.mark.parametrize("name", DELTA_ALGORITHMS)
    def test_anonymous_close_still_full_and_exact(self, name):
        # close() without named events must not trust stale scores.
        table = light_table(name)
        fill(table)
        fast, full = tracker_pair(table)
        table.join("newcomer")
        assert_deltas_identical(fast.close(), full.close())


class TestRouterAccountingOnBothPaths:
    """``plan.total_keys == record.probes_moved`` holds bit-exactly on
    the delta-scoped path exactly as it always has on the full path."""

    @pytest.mark.parametrize("name", DELTA_ALGORITHMS)
    def test_random_sync_schedules_keep_plan_record_agreement(self, name):
        rng = np.random.default_rng(29)
        probe = np.arange(2_000, dtype=np.int64)
        router = Router(light_table(name), probe_keys=probe)
        shadow = DeltaTracker(router.table.lookup_words)
        fleet = ["srv-{:02d}".format(index) for index in range(8)]
        router.sync(fleet)
        shadow.track(probe.copy(), router.table.words_of_keys(probe))
        next_id = 0
        for __ in range(12):
            if len(fleet) <= 4 or rng.random() < 0.5:
                fleet = fleet + ["dyn-{:03d}".format(next_id)]
                next_id += 1
            else:
                fleet = fleet[1:]
            record, plan = router.sync(fleet)
            assert plan.total_keys == record.probes_moved
            assert plan.moved_fraction == record.remap_fraction
            # The router's (fast-path) bill agrees with a full-path
            # shadow tracker watching the same table.
            shadow_delta = shadow.close()
            assert shadow_delta.moved == record.probes_moved
