"""Bulk executor vs. scalar reference: bit-exact equivalence.

The migration executor's hot path is array-at-a-time (grouped bulk
reads, one priced put per destination, one bulk evict per source).
These tests pin it to a per-key scalar reference executor -- a faithful
copy of the pre-bulk implementation, driven only through the scalar
``ServerStore`` API -- and assert the two leave *identical* state
behind: the same :class:`MigrationStatus` counts, the same
``copied_keys``, the same ``bytes_copied``, and byte-for-byte identical
stores, insertion order included.

Covered across every registered algorithm: full runs, mid-plan resume
through ``remaining_plan``, keys deleted before execution, retained
sources (``delete_source=False``), byte-budget throttling, and
mixed-type values (strings, bytes, None, arrays) exercising the exact
pricing path.
"""

import numpy as np
import pytest

from repro.hashing import make_table, registered_algorithms
from repro.service import MigrationExecutor, Router
from repro.service.migration import MigrationPlan, MoveBatch
from repro.store import DataPlane

#: Constructor overrides keeping the expensive tables test-sized.
#: Private absence sentinel for the reference executor (the store's
#: public ``MISSING`` means "no default" to the scalar ``get``).
_ABSENT = object()

LIGHT_CONFIGS = {
    "hd": {"dim": 1_024, "codebook_size": 128},
    "maglev": {"table_size": 509},
}


class ScalarExecutor:
    """Per-key reference executor (the pre-bulk implementation).

    Identical phase order -- copy, read-back verify, commit -- driven
    one key at a time through the scalar store API.  The bulk executor
    must be indistinguishable from this, state-wise, on every success
    path.
    """

    def __init__(
        self,
        plan,
        plane,
        max_keys_per_tick=1_024,
        max_bytes_per_tick=None,
        delete_source=True,
    ):
        self._plan = plan
        self._plane = plane
        self._max_keys = max_keys_per_tick
        self._max_bytes = max_bytes_per_tick
        self._delete_source = delete_source
        self._planned = plan.total_keys
        self._batch_index = 0
        self._offset = 0
        self._copied = 0
        self._copied_keys = set()
        self._committed = 0
        self._skipped = 0
        self._bytes_copied = 0
        self._ticks = 0

    @property
    def copied_keys(self):
        return frozenset(self._copied_keys)

    @property
    def status(self):
        from repro.service.migration import MigrationStatus

        return MigrationStatus(
            planned=self._planned,
            copied=self._copied,
            committed=self._committed,
            skipped=self._skipped,
            bytes_copied=self._bytes_copied,
            ticks=self._ticks,
        )

    def _next_chunk(self):
        chunk = []
        budget_bytes = self._max_bytes
        batches = self._plan.batches
        while len(chunk) < self._max_keys and self._batch_index < len(batches):
            batch = batches[self._batch_index]
            if self._offset >= len(batch.keys):
                self._batch_index += 1
                self._offset = 0
                continue
            key = batch.keys[self._offset]
            if budget_bytes is not None:
                cost = self._plane.store(batch.source).item_bytes(key)
                if chunk and cost > budget_bytes:
                    break
                budget_bytes -= cost
            chunk.append((batch, key))
            self._offset += 1
        return chunk

    def tick(self):
        chunk = self._next_chunk()
        staged = []
        for batch, key in chunk:
            value = self._plane.store(batch.source).get(key, _ABSENT)
            if value is _ABSENT:
                self._skipped += 1
                continue
            self._bytes_copied += self._plane.store(batch.destination).put(
                key, value
            )
            self._copied += 1
            self._copied_keys.add(key)
            staged.append((batch, key, value))
        for batch, key, value in staged:
            readback = self._plane.store(batch.destination).get(key, _ABSENT)
            assert readback is value or readback == value
        for batch, key, __ in staged:
            if self._delete_source:
                self._plane.store(batch.source).delete(key)
            self._committed += 1
        self._ticks += 1
        return self.status

    def run(self):
        while not self.status.done:
            self.tick()
        return self.status

    def remaining_plan(self):
        batches = []
        for index in range(self._batch_index, len(self._plan.batches)):
            batch = self._plan.batches[index]
            keys = (
                batch.keys[self._offset :]
                if index == self._batch_index
                else batch.keys
            )
            if keys:
                batches.append(
                    MoveBatch(
                        source=batch.source,
                        destination=batch.destination,
                        keys=keys,
                    )
                )
        return MigrationPlan(
            tracked=self._plan.tracked,
            batches=tuple(batches),
            epoch=self._plan.epoch,
        )


def light_table(name, seed=5):
    return make_table(name, seed=seed, **LIGHT_CONFIGS.get(name, {}))


def grown_pair(name, servers=12, keys=2_000, seed=5, values=None):
    """Two identical planes plus the +1-server grow plan over them."""
    router = Router(light_table(name, seed=seed))
    fleet = ["srv-{:02d}".format(i) for i in range(servers)]
    router.sync(fleet)
    plane = DataPlane(router)
    key_array = np.arange(keys, dtype=np.int64)
    if values is None:
        values = ["value-{}".format(k) for k in key_array]
    plane.put_many(key_array, values)
    plane.track()
    plan = router.sync(fleet + ["srv-spare"]).plan
    return plane.clone(), plane.clone(), plan


def assert_planes_identical(scalar_plane, bulk_plane):
    """Stores must match byte-for-byte, insertion order included."""
    ids = set(scalar_plane.stores) | set(bulk_plane.stores)
    for server_id in ids:
        scalar_store = scalar_plane.store(server_id)
        bulk_store = bulk_plane.store(server_id)
        assert scalar_store.keys() == bulk_store.keys(), server_id
        assert scalar_store.nbytes == bulk_store.nbytes, server_id
        for key, value in scalar_store.items():
            seen = bulk_store.get(key)
            assert seen is value or seen == value, (server_id, key)


def assert_executors_identical(scalar, bulk):
    assert scalar.status == bulk.status
    assert scalar.copied_keys == bulk.copied_keys


@pytest.mark.parametrize("name", registered_algorithms())
class TestBulkMatchesScalar:
    def test_full_run(self, name):
        scalar_plane, bulk_plane, plan = grown_pair(name)
        scalar = ScalarExecutor(plan, scalar_plane)
        bulk = MigrationExecutor(plan, bulk_plane)
        scalar.run()
        bulk.run()
        assert_executors_identical(scalar, bulk)
        assert_planes_identical(scalar_plane, bulk_plane)
        assert bulk.verify() == bulk.status.copied

    def test_byte_throttled_run(self, name):
        scalar_plane, bulk_plane, plan = grown_pair(name)
        scalar = ScalarExecutor(
            plan, scalar_plane, max_keys_per_tick=96, max_bytes_per_tick=512
        )
        bulk = MigrationExecutor(
            plan, bulk_plane, max_keys_per_tick=96, max_bytes_per_tick=512
        )
        scalar.run()
        bulk.run()
        # Identical tick boundaries prove the prefix-summed cursor
        # admits exactly the keys the per-key budget loop did.
        assert_executors_identical(scalar, bulk)
        assert_planes_identical(scalar_plane, bulk_plane)

    def test_mid_plan_resume(self, name):
        scalar_plane, bulk_plane, plan = grown_pair(name)
        if plan.total_keys < 2:
            pytest.skip("plan too small to split")
        scalar = ScalarExecutor(plan, scalar_plane, max_keys_per_tick=37)
        bulk = MigrationExecutor(plan, bulk_plane, max_keys_per_tick=37)
        for __ in range(3):
            scalar.tick()
            bulk.tick()
        assert_executors_identical(scalar, bulk)
        scalar_tail = scalar.remaining_plan()
        bulk_tail = bulk.remaining_plan()
        assert scalar_tail.batches == bulk_tail.batches
        assert scalar_tail.tracked == bulk_tail.tracked
        # Fresh executors over the tails drain to identical state.
        ScalarExecutor(scalar_tail, scalar_plane).run()
        MigrationExecutor(bulk_tail, bulk_plane).run()
        assert_planes_identical(scalar_plane, bulk_plane)

    def test_pre_deleted_keys_are_skipped_identically(self, name):
        scalar_plane, bulk_plane, plan = grown_pair(name)
        doomed = list(plan.moves)[::3]
        if not doomed:
            pytest.skip("no moves planned")
        # Delete at the *source* store: post-epoch routing already
        # points at the destination, where the key never arrived.
        for move in doomed:
            scalar_plane.store(move.source).delete(move.key)
            bulk_plane.store(move.source).delete(move.key)
        scalar = ScalarExecutor(plan, scalar_plane)
        bulk = MigrationExecutor(plan, bulk_plane)
        scalar.run()
        bulk.run()
        assert bulk.status.skipped == len(doomed)
        assert_executors_identical(scalar, bulk)
        assert_planes_identical(scalar_plane, bulk_plane)

    def test_retained_sources(self, name):
        scalar_plane, bulk_plane, plan = grown_pair(name)
        scalar = ScalarExecutor(plan, scalar_plane, delete_source=False)
        bulk = MigrationExecutor(plan, bulk_plane, delete_source=False)
        scalar.run()
        bulk.run()
        assert_executors_identical(scalar, bulk)
        assert_planes_identical(scalar_plane, bulk_plane)
        # Sources kept every key: both copies readable.
        for move in plan.moves:
            assert move.key in scalar_plane.store(move.source)
            assert move.key in bulk_plane.store(move.destination)


class TestMixedValueBatches:
    """Non-numeric batches must take the exact pricing path."""

    def _values(self, keys):
        cycle = [
            b"blob-bytes",
            "a string value",
            None,
            np.arange(4, dtype=np.int64),
            3.5,
            {"nested": "dict"},
        ]
        return [cycle[int(k) % len(cycle)] for k in keys]

    @pytest.mark.parametrize("name", ["modular", "hd", "maglev"])
    def test_mixed_values_bit_exact(self, name):
        keys = np.arange(1_500, dtype=np.int64)
        scalar_plane, bulk_plane, plan = grown_pair(
            name, keys=1_500, values=self._values(keys)
        )
        scalar = ScalarExecutor(plan, scalar_plane, max_keys_per_tick=64)
        bulk = MigrationExecutor(plan, bulk_plane, max_keys_per_tick=64)
        scalar.run()
        bulk.run()
        assert_executors_identical(scalar, bulk)
        assert_planes_identical(scalar_plane, bulk_plane)

    def test_mixed_key_types_bit_exact(self):
        router = Router(light_table("modular"))
        fleet = ["srv-{:02d}".format(i) for i in range(8)]
        router.sync(fleet)
        plane = DataPlane(router)
        for index in range(400):
            key = index if index % 2 else "key:{}".format(index)
            plane.put(key, "value-{}".format(index))
        plane.track()
        plan = router.sync(fleet + ["srv-spare"]).plan
        scalar_plane, bulk_plane = plane.clone(), plane.clone()
        scalar = ScalarExecutor(plan, scalar_plane, max_keys_per_tick=50)
        bulk = MigrationExecutor(plan, bulk_plane, max_keys_per_tick=50)
        scalar.run()
        bulk.run()
        assert_executors_identical(scalar, bulk)
        assert_planes_identical(scalar_plane, bulk_plane)


class TestProcessedViews:
    """The flat cursor's views must match the scalar cursor's at every
    tick boundary, including mid-batch stops and empty batches."""

    def test_processed_and_remaining_partition_the_plan(self):
        scalar_plane, bulk_plane, plan = grown_pair("modular", keys=2_000)
        bulk = MigrationExecutor(plan, bulk_plane, max_keys_per_tick=53)
        seen = []
        while not bulk.status.done:
            bulk.tick()
            processed = list(bulk.processed_moves())
            remaining = [
                (batch.source, batch.destination, key)
                for batch in bulk.remaining_plan().batches
                for key in batch.keys
            ]
            all_moves = [
                (move.source, move.destination, move.key)
                for move in plan.moves
            ]
            assert processed + remaining == all_moves
            seen.append(len(processed))
        assert seen[-1] == plan.total_keys

    def test_processed_batches_match_moves(self):
        __, bulk_plane, plan = grown_pair("rendezvous", keys=1_000)
        bulk = MigrationExecutor(plan, bulk_plane, max_keys_per_tick=41)
        bulk.tick()
        bulk.tick()
        flattened = [
            (batch.source, batch.destination, key)
            for batch, keys in bulk.processed_batches()
            for key in keys
        ]
        assert flattened == list(bulk.processed_moves())
