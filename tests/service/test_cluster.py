"""The sharded cluster layer: partitioning, fleet sync, failover,
snapshot/restore."""

import numpy as np
import pytest

from repro.errors import EmptyTableError, StateError
from repro.hashing import make_table
from repro.service import (
    ClusterRouter,
    MembershipUpdate,
    Router,
    dumps_state,
    loads_state,
)

HD_SPEC = {"algorithm": "hd", "config": {"dim": 1_024, "codebook_size": 128}}
FLEET = tuple("srv-{:02d}".format(index) for index in range(12))
PROBE = np.arange(10_000, dtype=np.int64)


def build(spec="consistent", n_shards=4, seed=3, probe=False):
    cluster = ClusterRouter(
        spec, n_shards=n_shards, seed=seed,
        probe_keys=PROBE if probe else None,
    )
    cluster.sync(FLEET)
    return cluster


class TestConstruction:
    def test_spec_and_factory_agree(self):
        by_spec = build("consistent")
        by_factory = ClusterRouter(
            lambda: make_table("consistent", seed=3), n_shards=4
        )
        by_factory.sync(FLEET)
        keys = np.arange(2_000)
        assert list(by_spec.route_batch(keys)) == list(
            by_factory.route_batch(keys)
        )

    def test_mismatched_factory_seeds_rejected(self):
        seeds = iter([1, 2, 3, 4])
        with pytest.raises(ValueError, match="seed"):
            ClusterRouter(
                lambda: make_table("modular", seed=next(seeds)), n_shards=4
            )

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ClusterRouter("modular", n_shards=0)

    def test_repr_names_algorithm_and_shards(self):
        cluster = build()
        assert "consistent" in repr(cluster)
        assert "shards=4" in repr(cluster)


class TestShardPartitioning:
    def test_every_shard_owns_traffic(self):
        cluster = build()
        owners = cluster.shards_of_words(
            cluster.words_of_keys(np.arange(5_000))
        )
        assert set(np.unique(owners).tolist()) == set(range(4))

    def test_scalar_and_vector_shard_assignment_agree(self):
        cluster = build()
        keys = np.arange(500)
        owners = cluster.shards_of_words(cluster.words_of_keys(keys))
        for index in range(0, 500, 61):
            assert cluster.shard_of(int(keys[index])) == owners[index]

    def test_route_batch_matches_scalar_route(self):
        cluster = build(HD_SPEC)
        keys = np.arange(1_000)
        batch = cluster.route_batch(keys)
        for index in range(0, 1_000, 103):
            assert cluster.route(int(keys[index])) == batch[index]

    def test_replica_batch_matches_scalar(self):
        cluster = build()
        keys = np.arange(300)
        batch = cluster.route_replicas_batch(keys, 3)
        assert batch.shape == (300, 3)
        for index in (0, 150, 299):
            assert tuple(batch[index]) == cluster.route_replicas(
                int(keys[index]), 3
            )
        assert list(batch[:, 0]) == list(cluster.route_batch(keys))


class TestFleetMembership:
    def test_sync_advances_every_shard_epoch(self):
        cluster = build()
        assert cluster.epochs == (1, 1, 1, 1)
        cluster.sync(FLEET[:10])
        assert cluster.epochs == (2, 2, 2, 2)
        assert cluster.server_counts == (10, 10, 10, 10)
        assert len(cluster) == 10

    def test_noop_sync_keeps_epochs(self):
        cluster = build()
        record, plan = cluster.sync(FLEET)
        assert cluster.epochs == (1, 1, 1, 1)
        assert record.records == (None, None, None, None)
        assert plan.is_empty

    def test_join_leave_apply_fleet_wide(self):
        cluster = build()
        cluster.join("late")
        assert all(count == 13 for count in cluster.server_counts)
        cluster.leave("late")
        assert all(count == 12 for count in cluster.server_counts)
        cluster.apply(MembershipUpdate(joins=("a", "b"), leaves=(FLEET[0],)))
        assert all(count == 13 for count in cluster.server_counts)

    def test_cluster_remap_accounting_aggregates_shards(self):
        cluster = build(probe=True)
        record, plan = cluster.sync(FLEET[:11])
        per_shard = sum(
            r.probes_moved for r in record.records if r is not None
        )
        assert record.probes_moved == per_shard > 0
        assert record.remapped == pytest.approx(per_shard / PROBE.size)
        assert 0 < record.remapped < 1
        assert cluster.history[-1] is record
        # the fleet-level plan merges the shard plans, one diff each
        assert plan.total_keys == record.probes_moved
        assert plan.tracked == PROBE.size
        assert all(
            move.source != move.destination for move in plan.moves
        )

    def test_untouched_shards_skip_epoch_close(self):
        # Declarative sync must not bill shards whose membership
        # already matches: their diff is empty, so the epoch close (a
        # full tracked-slice re-route on algorithms without the
        # delta-scoped fast path) is provably an empty delta -- skip it.
        cluster = build(probe=True)
        cluster.shard(2).sync(FLEET[:6])  # diverge one shard
        closes = [0] * cluster.n_shards
        for index in range(cluster.n_shards):
            tracker = cluster.shard(index).delta_tracker
            original = tracker.close

            def spy(*args, _original=original, _index=index, **kwargs):
                closes[_index] += 1
                return _original(*args, **kwargs)

            tracker.close = spy
        record, plan = cluster.sync(FLEET)
        # Only the diverged shard closed an epoch; its peers were
        # skipped entirely, epochs included.
        assert closes == [0, 0, 1, 0]
        assert cluster.epochs == (1, 1, 3, 1)
        assert record.records[0] is None
        assert record.records[2] is not None
        # ...and the fleet-level bill is exactly the touched shard's.
        assert record.probes_moved == record.records[2].probes_moved > 0
        assert record.remapped == pytest.approx(
            record.probes_moved / PROBE.size
        )
        assert plan.total_keys == record.probes_moved
        assert plan.tracked == PROBE.size

    def test_noop_sync_closes_nothing(self):
        cluster = build(probe=True)
        closes = [0] * cluster.n_shards
        for index in range(cluster.n_shards):
            tracker = cluster.shard(index).delta_tracker
            original = tracker.close

            def spy(*args, _original=original, _index=index, **kwargs):
                closes[_index] += 1
                return _original(*args, **kwargs)

            tracker.close = spy
        record, plan = cluster.sync(FLEET)
        assert closes == [0, 0, 0, 0]
        assert record.probes_moved == 0
        assert plan.is_empty

    def test_per_shard_divergence_is_allowed(self):
        # Draining one shard is a per-shard operation; its peers (and
        # their epochs) stay untouched.
        cluster = build()
        cluster.shard(2).sync(FLEET[:6])
        assert cluster.epochs == (1, 1, 2, 1)
        assert cluster.server_counts == (12, 12, 6, 12)
        assert len(cluster) == 12  # union still sees the whole fleet


class TestFailover:
    def test_avoid_reroutes_to_a_replica(self):
        cluster = build(HD_SPEC)
        key = 424242
        primary = cluster.route(key)
        replicas = cluster.route_replicas(key, 2)
        assert replicas[0] == primary
        assert cluster.route(key, avoid={primary}) == replicas[1]

    def test_avoid_is_noop_for_other_servers(self):
        cluster = build()
        key = "user:7"
        primary = cluster.route(key)
        other = next(s for s in cluster.server_ids if s != primary)
        assert cluster.route(key, avoid={other}) == primary

    def test_avoiding_whole_pool_raises(self):
        cluster = build()
        with pytest.raises(EmptyTableError):
            cluster.route("user:7", avoid=set(FLEET))

    def test_avoid_does_not_mutate_membership(self):
        cluster = build()
        before = cluster.epochs
        cluster.route("user:7", avoid={cluster.route("user:7")})
        assert cluster.epochs == before
        assert len(cluster) == 12


class TestClusterSnapshot:
    def test_round_trip_is_bit_exact_on_10k_probe(self):
        # Acceptance: per-shard assignments identical before/after
        # restore, through the JSON codec, on a 10k-key probe set.
        cluster = build(HD_SPEC, probe=True)
        cluster.sync(FLEET[:11])  # some churn first
        reference = cluster.route_batch(PROBE)
        blob = dumps_state(cluster.snapshot())
        restored = ClusterRouter.restore(loads_state(blob))
        assert restored.epochs == cluster.epochs
        assert restored.n_shards == cluster.n_shards
        assert list(restored.route_batch(PROBE)) == list(reference)

    def test_restored_shards_keep_history(self):
        cluster = build(probe=True)
        cluster.sync(FLEET[:10])
        restored = ClusterRouter.restore(cluster.snapshot())
        for index in range(cluster.n_shards):
            assert (
                restored.shard(index).history
                == cluster.shard(index).history
            )

    def test_single_shard_restore_in_place(self):
        cluster = build(probe=True)
        reference = cluster.route_batch(PROBE)
        saved = cluster.snapshot_shard(1)
        cluster.shard(1).sync(FLEET[:3])  # the shard diverges...
        assert list(cluster.route_batch(PROBE)) != list(reference)
        __, plan = cluster.restore_shard(1, saved)  # ...swapped back
        assert list(cluster.route_batch(PROBE)) == list(reference)
        # the swap emits the rescue plan for the keys it rerouted --
        # exactly the shard's probes that moved when it diverged and
        # now move back.
        assert not plan.is_empty
        assert {move.key for move in plan.moves} <= set(PROBE.tolist())

    def test_restore_shard_rejects_foreign_seed(self):
        cluster = build(seed=3)
        foreign = Router(make_table("consistent", seed=99))
        foreign.sync(FLEET)
        with pytest.raises(StateError):
            cluster.restore_shard(0, foreign.snapshot())

    def test_restore_rejects_bad_format(self):
        snapshot = build().snapshot()
        snapshot["cluster"]["format"] = 99
        with pytest.raises(StateError):
            ClusterRouter.restore(snapshot)

    def test_restore_rejects_mixed_shard_seeds(self):
        # A snapshot stitched together from clusters with different
        # hash-family seeds would silently misroute (the cluster hashes
        # with shard 0's family); restore must refuse it.
        snapshot = build(seed=3).snapshot()
        foreign = build(seed=99).snapshot()
        snapshot["shards"][1] = foreign["shards"][1]
        with pytest.raises(StateError, match="seed"):
            ClusterRouter.restore(snapshot)

    def test_cluster_history_survives_round_trip(self):
        cluster = build(probe=True)
        cluster.sync(FLEET[:10])
        cluster.sync(FLEET)
        restored = ClusterRouter.restore(
            loads_state(dumps_state(cluster.snapshot()))
        )
        assert restored.history == cluster.history
        assert restored.history[1].probes_moved > 0
