"""The migration engine: delta planning, throttled execution, resume."""

import numpy as np
import pytest

from repro.errors import MigrationError
from repro.hashing import make_table, registered_algorithms
from repro.service import (
    ClusterRouter,
    MigrationExecutor,
    MigrationPlan,
    Router,
)
from repro.store import DataPlane

#: Constructor overrides keeping the expensive tables test-sized.
LIGHT_CONFIGS = {
    "hd": {"dim": 1_024, "codebook_size": 128},
    "maglev": {"table_size": 509},
}


def light_table(name, seed=5):
    return make_table(name, seed=seed, **LIGHT_CONFIGS.get(name, {}))


def populated_plane(algorithm="modular", servers=12, keys=3_000, seed=5):
    router = Router(light_table(algorithm, seed=seed))
    router.sync("srv-{:02d}".format(i) for i in range(servers))
    plane = DataPlane(router)
    key_array = np.arange(keys, dtype=np.int64)
    plane.put_many(key_array, ["value-{}".format(k) for k in key_array])
    plane.track()
    return plane, key_array


class TestPlanAccountingAgreement:
    """The plan and the epoch record must come from one diff."""

    @pytest.mark.parametrize("name", registered_algorithms())
    def test_plan_matches_record_bit_exactly(self, name):
        probe = np.arange(2_000, dtype=np.int64)
        router = Router(light_table(name), probe_keys=probe)
        router.sync("srv-{:02d}".format(i) for i in range(12))
        for target in (13, 10):  # one grow epoch, one shrink epoch
            record, plan = router.sync(
                "srv-{:02d}".format(i) for i in range(target)
            )
            assert plan.total_keys == record.probes_moved
            assert len(plan.moves) == record.probes_moved
            assert plan.tracked == probe.size
            assert (
                len(plan.moves) / plan.tracked == record.remap_fraction
            )
            assert plan.moved_fraction == record.remap_fraction
            assert plan.epoch == record.epoch
            # every move names two distinct, real endpoints
            for move in plan.moves:
                assert move.source != move.destination

    def test_grow_moves_land_on_newcomers_for_minimal_algorithms(self):
        probe = np.arange(2_000, dtype=np.int64)
        router = Router(light_table("consistent"), probe_keys=probe)
        router.sync("srv-{:02d}".format(i) for i in range(12))
        __, plan = router.sync(
            ["srv-{:02d}".format(i) for i in range(12)] + ["newcomer"]
        )
        assert not plan.is_empty
        assert {move.destination for move in plan.moves} == {"newcomer"}

    def test_untracked_router_emits_empty_plan(self):
        router = Router(light_table("modular"))
        record, plan = router.sync(["a", "b"])
        assert plan.is_empty
        assert plan.tracked == 0
        assert plan.moved_fraction == 0.0


class TestMigrationPlan:
    def test_batches_group_by_source_destination(self):
        plane, keys = populated_plane("modular", servers=8)
        __, plan = plane.router.sync("srv-{:02d}".format(i) for i in range(9))
        pairs = list(plan.pair_counts())
        assert len(pairs) == len(set(pairs))  # one batch per pair
        assert sum(plan.pair_counts().values()) == plan.total_keys
        for batch in plan.batches:
            assert batch.source != batch.destination
            assert len(batch) == len(set(batch.keys))

    def test_merge_concatenates_and_sums_tracked(self):
        a = MigrationPlan(tracked=10, batches=(), epoch=1)
        b = MigrationPlan(tracked=5, batches=(), epoch=2)
        merged = MigrationPlan.merge([a, b])
        assert merged.tracked == 15
        assert merged.epoch is None
        assert MigrationPlan.merge([a, b], tracked=100).tracked == 100


class TestMigrationExecutor:
    def test_executes_to_completion_and_verifies(self):
        plane, keys = populated_plane("consistent")
        record, plan = plane.router.sync(
            "srv-{:02d}".format(i) for i in range(13)
        )
        executor = MigrationExecutor(plan, plane, max_keys_per_tick=128)
        status = executor.run()
        assert status.done
        assert status.committed == plan.total_keys == record.probes_moved
        assert executor.verify() == status.committed
        __, found = plane.get_many(keys)
        assert found.all()

    def test_throttle_bounds_keys_per_tick(self):
        plane, __ = populated_plane("modular")
        __, plan = plane.router.sync("srv-{:02d}".format(i) for i in range(13))
        executor = MigrationExecutor(plan, plane, max_keys_per_tick=100)
        before = executor.status.committed
        status = executor.tick()
        assert status.committed - before <= 100
        assert not status.done

    def test_byte_throttle_admits_at_least_one_key(self):
        plane, __ = populated_plane("consistent", keys=500)
        __, plan = plane.router.sync("srv-{:02d}".format(i) for i in range(13))
        executor = MigrationExecutor(
            plan, plane, max_keys_per_tick=1_000, max_bytes_per_tick=1
        )
        status = executor.tick()
        assert status.committed == 1  # progress is guaranteed
        assert executor.run().done

    def test_byte_throttle_bounds_each_tick(self):
        # When every item fits the budget, a tick must not exceed it
        # (the >= 1 key escape hatch is only for oversized items).
        plane, __ = populated_plane("consistent", keys=500)
        __, plan = plane.router.sync("srv-{:02d}".format(i) for i in range(13))
        per_item = plane.store(plan.batches[0].source).item_bytes(
            plan.batches[0].keys[0]
        )
        executor = MigrationExecutor(
            plan,
            plane,
            max_keys_per_tick=1_000,
            max_bytes_per_tick=3 * per_item,
        )
        before = executor.status.bytes_copied
        status = executor.tick()
        assert status.bytes_copied - before <= 3 * per_item

    def test_mixed_type_keys_migrate_without_loss(self):
        # np.asarray would coerce a mixed int/str population to
        # strings; the plan would then name keys the stores never held
        # (all skipped) and the real keys would strand at old owners.
        router = Router(light_table("modular"))
        router.sync("srv-{:02d}".format(i) for i in range(12))
        plane = DataPlane(router)
        mixed = ["user:{}".format(i) if i % 2 else i for i in range(200)]
        for key in mixed:
            plane.put(key, repr(key))
        plane.track()
        __, plan = router.sync("srv-{:02d}".format(i) for i in range(6))
        assert plan.total_keys > 50  # the resize genuinely moved keys
        assert {type(move.key) for move in plan.moves} == {int, str}
        status = MigrationExecutor(plan, plane).run()
        assert status.skipped == 0
        assert status.committed == plan.total_keys
        for key in mixed:
            assert plane.get(key) == repr(key)

    def test_deleted_keys_are_skipped_not_lost(self):
        plane, __ = populated_plane("consistent", keys=800)
        __, plan = plane.router.sync("srv-{:02d}".format(i) for i in range(13))
        victim = plan.moves[0]
        plane.store(victim.source).delete(victim.key)
        status = MigrationExecutor(plan, plane).run()
        assert status.done
        assert status.skipped == 1
        assert status.committed == plan.total_keys - 1

    def test_interrupt_and_resume_with_fresh_executor(self):
        # Acceptance: interrupt mid-plan, resume from the exported
        # remainder, final ownership verified.
        plane, keys = populated_plane("modular")
        record, plan = plane.router.sync(
            "srv-{:02d}".format(i) for i in range(14)
        )
        assert plan.total_keys > 300
        first = MigrationExecutor(plan, plane, max_keys_per_tick=75)
        for __ in range(3):  # ...interrupted after three ticks
            first.tick()
        assert not first.status.done
        remainder = first.remaining_plan()
        assert (
            remainder.total_keys
            == plan.total_keys - first.status.committed
        )
        second = MigrationExecutor(remainder, plane, max_keys_per_tick=75)
        status = second.run()
        assert status.done
        assert (
            first.status.committed + status.committed == plan.total_keys
        )
        assert first.verify() == first.status.committed
        assert second.verify() == status.committed
        __, found = plane.get_many(keys)
        assert found.all()

    def test_resume_same_executor_after_pause(self):
        plane, keys = populated_plane("consistent")
        __, plan = plane.router.sync("srv-{:02d}".format(i) for i in range(13))
        executor = MigrationExecutor(plan, plane, max_keys_per_tick=60)
        executor.run(max_ticks=2)  # paused
        paused = executor.status
        assert 0 < paused.committed < plan.total_keys
        assert executor.run().done  # resumed on the same cursor
        __, found = plane.get_many(keys)
        assert found.all()

    def test_rerunning_a_committed_plan_only_skips(self):
        plane, __ = populated_plane("consistent", keys=600)
        __, plan = plane.router.sync("srv-{:02d}".format(i) for i in range(13))
        MigrationExecutor(plan, plane).run()
        again = MigrationExecutor(plan, plane).run()
        assert again.done
        assert again.committed == 0
        assert again.skipped == plan.total_keys

    def test_ownership_verification_catches_stale_plan(self):
        plane, __ = populated_plane("consistent", keys=600)
        __, plan = plane.router.sync("srv-{:02d}".format(i) for i in range(13))
        executor = MigrationExecutor(plan, plane)
        executor.run()
        # A later epoch reroutes keys; the executed plan's destinations
        # are no longer current owners for (at least some) moved keys.
        plane.router.sync("srv-{:02d}".format(i) for i in range(8))
        with pytest.raises(MigrationError):
            executor.verify()

    def test_invalid_throttles_rejected(self):
        plane, __ = populated_plane("consistent", keys=10)
        plan = MigrationPlan(tracked=0, batches=())
        with pytest.raises(ValueError):
            MigrationExecutor(plan, plane, max_keys_per_tick=0)
        with pytest.raises(ValueError):
            MigrationExecutor(plan, plane, max_bytes_per_tick=0)


class TestClusterMigration:
    def test_10k_key_round_trip_through_grow_and_shrink(self):
        # Acceptance: a 10k-key DataPlane over a ClusterRouter survives
        # a grow and a shrink with every key readable afterwards.
        cluster = ClusterRouter("consistent", n_shards=4, seed=9)
        cluster.sync("srv-{:02d}".format(i) for i in range(12))
        plane = DataPlane(cluster)
        keys = np.arange(10_000, dtype=np.int64)
        plane.put_many(keys, keys)
        plane.track()
        for target in (16, 10):
            result = cluster.sync(
                "srv-{:02d}".format(i) for i in range(target)
            )
            assert result.plan.total_keys == result.record.probes_moved > 0
            status = MigrationExecutor(
                result.plan, plane, max_keys_per_tick=512
            ).run()
            assert status.done
            assert status.committed == result.plan.total_keys
            __, found = plane.get_many(keys)
            assert found.all()
        assert plane.key_count == keys.size

    def test_restore_shard_plan_rescues_stranded_keys(self):
        cluster = ClusterRouter("modular", n_shards=3, seed=9)
        cluster.sync("srv-{:02d}".format(i) for i in range(10))
        plane = DataPlane(cluster)
        keys = np.arange(4_000, dtype=np.int64)
        plane.put_many(keys, keys)
        plane.track()
        saved = cluster.snapshot_shard(1)
        # The shard diverges *and its data follows*: executing the
        # divergence epoch's plan moves shard-1 keys to the new owners.
        result = cluster.shard(1).sync("srv-{:02d}".format(i) for i in range(6))
        MigrationExecutor(result.plan, plane).run()
        __, found = plane.get_many(keys)
        assert found.all()
        # Swapping the snapshot back reroutes those keys again; the
        # emitted plan is exactly the rescue migration.
        __, plan = cluster.restore_shard(1, saved)
        assert plan.total_keys == result.plan.total_keys
        status = MigrationExecutor(plan, plane).run()
        assert status.done
        __, found = plane.get_many(keys)
        assert found.all()
