"""Snapshot/restore: bit-identical replicas for every algorithm."""

import numpy as np
import pytest

from repro.errors import StateError
from repro.hashing import (
    DynamicHashTable,
    HDHashTable,
    MaglevHashTable,
    make_table,
    registered_algorithms,
)
from repro.hdc.basis import circular_basis
from repro.memory import FaultInjector, SingleBitFlips
from repro.service import (
    Router,
    dumps_state,
    load_table,
    loads_state,
    save_table,
)

LIGHT_CONFIG = {"hd": {"dim": 1_024, "codebook_size": 128}}
PROBE = np.arange(10_000, dtype=np.uint64)


def build(name, seed=3):
    return make_table(name, seed=seed, **LIGHT_CONFIG.get(name, {}))


def churn(table):
    """A membership history with joins and interleaved leaves."""
    for index in range(10):
        table.join(index)
    table.leave(3)
    table.leave(7)
    table.join("late-1")
    table.join("late-2")
    return table


@pytest.mark.parametrize("name", sorted(registered_algorithms()))
class TestStateRoundTrip:
    def test_identical_routing_on_probe(self, name):
        table = churn(build(name))
        reference = table.lookup_batch(PROBE)
        restored = DynamicHashTable.from_state(table.state_dict())
        assert restored.server_ids == table.server_ids
        assert np.array_equal(restored.lookup_batch(PROBE), reference)

    def test_json_codec_round_trip(self, name):
        table = churn(build(name))
        reference = table.lookup_batch(PROBE[:2_000])
        restored = DynamicHashTable.from_state(
            loads_state(dumps_state(table.state_dict()))
        )
        assert np.array_equal(restored.lookup_batch(PROBE[:2_000]), reference)

    def test_restored_table_accepts_further_churn(self, name):
        table = churn(build(name))
        restored = DynamicHashTable.from_state(table.state_dict())
        table.join("after")
        restored.join("after")
        table.leave(5)
        restored.leave(5)
        assert np.array_equal(
            table.lookup_batch(PROBE[:2_000]),
            restored.lookup_batch(PROBE[:2_000]),
        )

    def test_snapshot_is_insulated_from_later_mutation(self, name):
        table = churn(build(name))
        state = table.state_dict()
        reference = table.lookup_batch(PROBE[:2_000])
        table.leave(0)  # mutate after snapshotting
        restored = DynamicHashTable.from_state(state)
        assert np.array_equal(restored.lookup_batch(PROBE[:2_000]), reference)


class TestCorruptedSnapshots:
    """The paper's robustness story needs bit-exact replicas: a snapshot
    must capture the live (possibly corrupted) memory, not a pristine
    rebuild."""

    @pytest.mark.parametrize("name", sorted(registered_algorithms()))
    def test_restore_preserves_injected_faults(self, name, rng):
        table = churn(build(name))
        injector = FaultInjector(table.memory_regions())
        injector.inject(SingleBitFlips(20), rng)
        reference = table.lookup_batch(PROBE)
        restored = DynamicHashTable.from_state(table.state_dict())
        assert np.array_equal(restored.lookup_batch(PROBE), reference)

    def test_hd_routes_identically_under_fault_injection(self, rng):
        """Acceptance: HD replica is bit-identical on a 10k-key probe,
        through the serialized codec, with faults in the item memory."""
        table = churn(build("hd"))
        injector = FaultInjector(table.memory_regions())
        injector.inject(SingleBitFlips(50), rng)
        reference = table.lookup_batch(PROBE)
        blob = dumps_state(table.state_dict())
        restored = DynamicHashTable.from_state(loads_state(blob))
        assert np.array_equal(restored.lookup_batch(PROBE), reference)
        rows = table.item_memory.memory_view()
        restored_rows = restored.item_memory.memory_view()
        assert np.array_equal(rows, restored_rows)  # bit-exact memory

    def test_hd_exposed_codebook_corruption_survives(self, rng):
        table = make_table(
            "hd", seed=3, dim=1_024, codebook_size=128, expose_codebook=True
        )
        churn(table)
        injector = FaultInjector(table.memory_regions())
        injector.inject(SingleBitFlips(60), rng)
        reference = table.lookup_batch(PROBE)
        restored = DynamicHashTable.from_state(
            loads_state(dumps_state(table.state_dict()))
        )
        assert np.array_equal(restored.lookup_batch(PROBE), reference)


class TestHDCodebookModes:
    def test_explicit_codebook_is_embedded(self):
        codebook = circular_basis(
            64, 512, np.random.default_rng(99)
        )
        table = HDHashTable(seed=1, codebook=codebook)
        churn(table)
        state = table.state_dict()
        assert state["payload"]["codebook"]["mode"] == "explicit"
        restored = HDHashTable.from_state(
            loads_state(dumps_state(state))
        )
        assert np.array_equal(
            restored.lookup_batch(PROBE), table.lookup_batch(PROBE)
        )
        assert restored.codebook_size == 64

    def test_derived_codebook_stays_compact(self):
        table = churn(build("hd"))
        state = table.state_dict()
        assert state["payload"]["codebook"] == {"mode": "derived"}
        assert state["payload"]["codebook_packed"] is None
        # the serialized form stays small: no embedded codebook matrix
        assert len(dumps_state(state)) < 20_000


class TestFilePersistence:
    def test_save_and_load_table(self, tmp_path):
        table = churn(build("maglev"))
        path = str(tmp_path / "maglev.json")
        save_table(table, path)
        restored = load_table(path)
        assert isinstance(restored, MaglevHashTable)
        assert np.array_equal(
            restored.lookup_batch(PROBE[:2_000]),
            table.lookup_batch(PROBE[:2_000]),
        )

    def test_bytes_server_ids_round_trip(self, tmp_path):
        table = build("consistent")
        table.join(b"raw-id")
        table.join("text-id")
        path = str(tmp_path / "table.json")
        save_table(table, path)
        restored = load_table(path)
        assert restored.server_ids == (b"raw-id", "text-id")


class TestRouterSnapshotHistory:
    """Regression: ``Router.snapshot()`` used to drop the EpochRecord
    history, so remap accounting silently reset to zero after a
    snapshot round-trip."""

    def _churned_router(self):
        router = Router(
            build("consistent"), probe_keys=PROBE[:2_000].tolist()
        )
        router.sync(range(8))
        router.sync(range(6))
        router.sync(list(range(6)) + ["late"])
        return router

    def test_history_survives_round_trip(self):
        router = self._churned_router()
        restored = Router.restore(router.snapshot())
        assert restored.epoch == router.epoch == 3
        assert restored.history == router.history
        # the churn bill is preserved, not reset
        assert sum(r.remapped for r in restored.history) == pytest.approx(
            sum(r.remapped for r in router.history)
        )
        assert restored.history[1].probes_moved > 0

    def test_history_survives_json_codec(self):
        router = self._churned_router()
        restored = Router.restore(
            loads_state(dumps_state(router.snapshot()))
        )
        assert restored.history == router.history

    def test_restored_router_appends_to_history(self):
        router = self._churned_router()
        restored = Router.restore(router.snapshot())
        restored.sync(range(6))
        assert restored.epoch == 4
        assert len(restored.history) == 4
        assert restored.history[:3] == router.history

    def test_empty_history_round_trips(self):
        router = Router(build("modular"))
        restored = Router.restore(router.snapshot())
        assert restored.history == ()
        assert restored.epoch == 0


class TestStateErrors:
    def test_wrong_format_rejected(self):
        state = build("modular").state_dict()
        state["format"] = 99
        with pytest.raises(StateError):
            DynamicHashTable.from_state(state)

    def test_class_mismatch_rejected(self):
        state = churn(build("modular")).state_dict()
        with pytest.raises(StateError):
            HDHashTable.from_state(state)

    def test_subclass_dispatch_accepts_match(self):
        state = churn(build("hd")).state_dict()
        restored = HDHashTable.from_state(state)
        assert isinstance(restored, HDHashTable)
