"""Tests for random-, level- and circular-hypervector construction.

The circular tests verify the corrected Algorithm 1 semantics, including
the XOR-closure property and the odd-cardinality footnote.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc import (
    circular_basis,
    circular_hypervectors,
    hamming_distance,
    level_basis,
    level_hypervectors,
    random_basis,
    transformation_flip_counts,
)


class TestFlipCounts:
    @given(
        steps=st.integers(min_value=1, max_value=64),
        dim=st.integers(min_value=1, max_value=20_000),
    )
    def test_total_is_exact(self, steps, dim):
        counts = transformation_flip_counts(steps, dim)
        assert sum(counts) == dim
        assert all(count >= 0 for count in counts)

    def test_even_split(self):
        assert transformation_flip_counts(4, 100) == [25, 25, 25, 25]

    def test_fractional_accumulation(self):
        counts = transformation_flip_counts(3, 10)
        assert sum(counts) == 10
        assert max(counts) - min(counts) <= 1

    def test_override_total(self):
        assert sum(transformation_flip_counts(5, 100, total=40)) == 40

    def test_invalid(self):
        with pytest.raises(ValueError):
            transformation_flip_counts(0, 10)
        with pytest.raises(ValueError):
            transformation_flip_counts(2, 10, total=-1)


class TestRandomBasis:
    def test_shape_and_kind(self, rng):
        basis = random_basis(5, 128, rng)
        assert basis.kind == "random"
        assert basis.count == 5 and basis.dim == 128

    def test_near_orthogonal(self, rng):
        basis = random_basis(8, 10_000, rng)
        matrix = basis.similarity_matrix()
        off = matrix[~np.eye(8, dtype=bool)]
        assert np.abs(off).max() < 0.1


class TestLevelBasis:
    def test_monotone_decay_from_first(self, rng):
        vectors = level_hypervectors(12, 10_000, rng)
        distances = [
            int(hamming_distance(vectors[0], vectors[j])) for j in range(12)
        ]
        assert distances == sorted(distances)

    def test_endpoints_dissimilar(self, rng):
        basis = level_basis(12, 10_000, rng)
        assert basis.similarity_profile()[-1] < 0.25

    def test_adjacent_step_sizes(self, rng):
        vectors = level_hypervectors(11, 1_000, rng)
        steps = transformation_flip_counts(10, 1_000)
        for index in range(1, 11):
            observed = int(hamming_distance(vectors[index - 1], vectors[index]))
            assert observed == steps[index - 1]

    def test_single_level(self, rng):
        assert level_hypervectors(1, 64, rng).shape == (1, 64)

    def test_invalid_count(self, rng):
        with pytest.raises(ValueError):
            level_hypervectors(0, 64, rng)


class TestCircularConstruction:
    def test_shapes(self, rng):
        for count in (2, 4, 12, 64):
            vectors = circular_hypervectors(count, 512, rng)
            assert vectors.shape == (count, 512)

    def test_closure_wrap_step(self, rng):
        """d(c_0, c_{n-1}) equals the weight of the one remaining queued
        transformation -- the corrected Algorithm 1's closure property."""
        dim, count = 2_048, 16
        vectors = circular_hypervectors(count, dim, rng)
        steps = transformation_flip_counts(count // 2, dim)
        wrap_distance = int(hamming_distance(vectors[0], vectors[-1]))
        assert wrap_distance == steps[-1]

    def test_forward_steps_exact(self, rng):
        dim, count = 1_024, 12
        vectors = circular_hypervectors(count, dim, rng)
        steps = transformation_flip_counts(count // 2, dim)
        for index in range(1, count // 2 + 1):
            observed = int(hamming_distance(vectors[index - 1], vectors[index]))
            assert observed == steps[index - 1]

    def test_backward_reapplies_queued_transformations(self, rng):
        """c_{half+j} = c_{half+j-1} XOR t_j implies the second half walks
        back towards c_0 with the same step weights, FIFO order."""
        dim, count = 1_024, 12
        vectors = circular_hypervectors(count, dim, rng)
        steps = transformation_flip_counts(count // 2, dim)
        half = count // 2
        for j in range(1, count - half):
            observed = int(hamming_distance(vectors[half + j - 1], vectors[half + j]))
            assert observed == steps[j - 1]

    def test_no_discontinuity(self, rng):
        """The wrap-around step is no bigger than any interior step."""
        basis = circular_basis(16, 4_096, rng)
        profile = basis.similarity_profile()
        interior_drop = profile[0] - profile[1]
        wrap_drop = profile[0] - profile[-1]
        assert wrap_drop <= interior_drop * 1.5

    def test_antipode_least_similar(self, rng):
        basis = circular_basis(12, 10_000, rng)
        profile = basis.similarity_profile()
        assert np.argmin(profile) in (5, 6, 7)

    def test_symmetry_of_profile(self, rng):
        basis = circular_basis(16, 10_000, rng)
        profile = basis.similarity_profile()
        for j in range(1, 8):
            assert profile[j] == pytest.approx(profile[16 - j], abs=0.08)

    @settings(max_examples=10)
    @given(
        count=st.integers(min_value=3, max_value=33).filter(lambda n: n % 2 == 1),
    )
    def test_odd_cardinality_footnote(self, count):
        rng = np.random.default_rng(count)
        vectors = circular_hypervectors(count, 256, rng)
        assert vectors.shape == (count, 256)
        doubled = circular_hypervectors(
            2 * count, 256, np.random.default_rng(count)
        )
        assert np.array_equal(vectors, doubled[::2])

    def test_circular_distance_monotone_to_antipode(self, rng):
        count, dim = 24, 10_000
        vectors = circular_hypervectors(count, dim, rng)
        distances = [
            int(hamming_distance(vectors[0], vectors[j]))
            for j in range(count // 2 + 1)
        ]
        assert all(
            later >= earlier - dim // 100
            for earlier, later in zip(distances, distances[1:])
        )

    def test_invalid_count(self, rng):
        with pytest.raises(ValueError):
            circular_hypervectors(0, 64, rng)


class TestBasisSet:
    def test_vectors_read_only(self, rng):
        basis = circular_basis(8, 64, rng)
        with pytest.raises(ValueError):
            basis.vectors[0, 0] = 1

    def test_packed_cached_and_read_only(self, rng):
        basis = circular_basis(8, 64, rng)
        assert basis.packed() is basis.packed()
        with pytest.raises(ValueError):
            basis.packed()[0, 0] = 1

    def test_getitem_and_len(self, rng):
        basis = random_basis(4, 32, rng)
        assert len(basis) == 4
        assert basis[2].shape == (32,)

    def test_requires_2d(self):
        from repro.hdc import BasisSet

        with pytest.raises(ValueError):
            BasisSet("random", np.zeros(8, dtype=np.uint8))
