"""Tests for packed storage and the popcount backends."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdc import (
    BACKENDS,
    hamming_distance,
    hamming_packed,
    hamming_packed_matrix,
    pack_bits,
    popcount_u64,
    row_bytes,
    unpack_bits,
    words_per_row,
)


def _bits(count, dim, seed):
    return np.random.default_rng(seed).integers(0, 2, (count, dim), dtype=np.uint8)


class TestLayout:
    @pytest.mark.parametrize(
        "dim,words", [(1, 1), (64, 1), (65, 2), (128, 2), (10_000, 157)]
    )
    def test_words_per_row(self, dim, words):
        assert words_per_row(dim) == words
        assert row_bytes(dim) == words * 8

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            words_per_row(0)


class TestPackUnpack:
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=5),
        st.integers(0, 2 ** 31),
    )
    def test_roundtrip(self, dim, count, seed):
        bits = _bits(count, dim, seed)
        assert np.array_equal(unpack_bits(pack_bits(bits), dim), bits)

    def test_single_vector_roundtrip(self):
        bits = np.asarray([1, 0, 1, 1, 0], dtype=np.uint8)
        packed = pack_bits(bits)
        assert packed.shape == (8,)
        assert np.array_equal(unpack_bits(packed, 5), bits)

    def test_padding_is_zero(self):
        bits = np.ones((2, 3), dtype=np.uint8)
        packed = pack_bits(bits)
        assert packed[:, 1:].sum() == 0  # everything beyond the first byte

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros((1, 2, 3), dtype=np.uint8))


class TestPopcount:
    @given(st.lists(st.integers(0, 2 ** 64 - 1), min_size=1, max_size=16))
    def test_popcount_u64_matches_python(self, values):
        array = np.asarray(values, dtype=np.uint64)
        assert popcount_u64(array).tolist() == [bin(v).count("1") for v in values]

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(
        dim=st.integers(min_value=1, max_value=300),
        seed=st.integers(0, 2 ** 31),
    )
    def test_hamming_packed_matches_unpacked(self, backend, dim, seed):
        bits = _bits(2, dim, seed)
        packed = pack_bits(bits)
        expected = int(hamming_distance(bits[0], bits[1]))
        got = int(hamming_packed(packed[0], packed[1], backend=backend))
        assert got == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_query_against_matrix(self, backend):
        bits = _bits(9, 100, 3)
        packed = pack_bits(bits)
        distances = hamming_packed(packed[0], packed, backend=backend)
        expected = [int(hamming_distance(bits[0], row)) for row in bits]
        assert distances.tolist() == expected

    def test_unknown_backend(self):
        packed = pack_bits(_bits(1, 8, 0))
        with pytest.raises(ValueError):
            hamming_packed(packed[0], packed[0], backend="gpu")


class TestHammingMatrix:
    def test_matches_pairwise(self):
        queries = _bits(5, 130, 1)
        memory = _bits(7, 130, 2)
        matrix = hamming_packed_matrix(pack_bits(queries), pack_bits(memory))
        for i in range(5):
            for j in range(7):
                assert matrix[i, j] == hamming_distance(queries[i], memory[j])

    def test_chunking_equivalence(self):
        queries = pack_bits(_bits(33, 70, 4))
        memory = pack_bits(_bits(9, 70, 5))
        full = hamming_packed_matrix(queries, memory)
        chunked = hamming_packed_matrix(queries, memory, chunk_rows=4)
        assert np.array_equal(full, chunked)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hamming_packed_matrix(
                pack_bits(_bits(1, 64, 0)), pack_bits(_bits(1, 128, 0))
            )

    def test_backends_agree(self):
        queries = pack_bits(_bits(6, 257, 6))
        memory = pack_bits(_bits(11, 257, 7))
        results = [
            hamming_packed_matrix(queries, memory, backend=backend)
            for backend in BACKENDS
        ]
        for other in results[1:]:
            assert np.array_equal(results[0], other)
