"""Tests for the similarity metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdc import (
    cosine_similarity,
    hamming_distance,
    hamming_similarity,
    inverse_hamming,
    random_hypervectors,
    similarity_matrix,
)


def _pair(dim, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, (2, dim), dtype=np.uint8)


class TestHamming:
    @given(st.integers(1, 256), st.integers(0, 2 ** 31))
    def test_self_distance_zero(self, dim, seed):
        a, __ = _pair(dim, seed)
        assert hamming_distance(a, a) == 0

    @given(st.integers(1, 256), st.integers(0, 2 ** 31))
    def test_symmetry(self, dim, seed):
        a, b = _pair(dim, seed)
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(st.integers(1, 128), st.integers(0, 2 ** 31), st.integers(0, 2 ** 31))
    def test_triangle_inequality(self, dim, seed_a, seed_b):
        a, b = _pair(dim, seed_a)
        c, __ = _pair(dim, seed_b)
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c)
        )

    def test_broadcasting(self):
        matrix = np.eye(4, dtype=np.uint8)
        query = np.zeros(4, dtype=np.uint8)
        assert hamming_distance(matrix, query).tolist() == [1, 1, 1, 1]


class TestNormalisedMetrics:
    @given(st.integers(1, 256), st.integers(0, 2 ** 31))
    def test_identities(self, dim, seed):
        a, b = _pair(dim, seed)
        h = int(hamming_distance(a, b))
        assert inverse_hamming(a, b) == dim - h
        assert hamming_similarity(a, b) == pytest.approx(1 - h / dim)
        assert cosine_similarity(a, b) == pytest.approx(1 - 2 * h / dim)

    def test_cosine_range(self, rng):
        vectors = random_hypervectors(8, 512, rng)
        matrix = similarity_matrix(vectors)
        assert (matrix <= 1.0).all() and (matrix >= -1.0).all()

    def test_cosine_of_complement_is_minus_one(self):
        a = np.asarray([0, 1, 0, 1], dtype=np.uint8)
        assert cosine_similarity(a, 1 - a) == -1.0


class TestSimilarityMatrix:
    def test_diagonal_and_symmetry(self, rng):
        vectors = random_hypervectors(6, 256, rng)
        matrix = similarity_matrix(vectors)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.allclose(matrix, matrix.T)

    def test_random_vectors_near_orthogonal(self, rng):
        vectors = random_hypervectors(6, 10_000, rng)
        matrix = similarity_matrix(vectors)
        off_diag = matrix[~np.eye(6, dtype=bool)]
        assert np.abs(off_diag).max() < 0.1

    def test_metric_variants(self, rng):
        vectors = random_hypervectors(3, 64, rng)
        distances = similarity_matrix(vectors, metric="distance")
        hamming = similarity_matrix(vectors, metric="hamming")
        assert np.allclose(hamming, 1 - distances / 64)

    def test_unknown_metric(self, rng):
        with pytest.raises(ValueError):
            similarity_matrix(random_hypervectors(2, 8, rng), metric="l2")
