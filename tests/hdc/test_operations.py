"""Tests for the HDC operation primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdc import (
    bind,
    bundle,
    flip_bits,
    flipped,
    invert,
    permute,
    random_hypervector,
    random_hypervectors,
    validate_hypervector,
)

dims = st.integers(min_value=1, max_value=256)


def _vector(dim, seed):
    return np.random.default_rng(seed).integers(0, 2, size=dim, dtype=np.uint8)


class TestRandom:
    def test_shape_and_values(self, rng):
        vector = random_hypervector(1_000, rng)
        assert vector.shape == (1_000,)
        assert set(np.unique(vector)) <= {0, 1}

    def test_matrix_shape(self, rng):
        matrix = random_hypervectors(5, 64, rng)
        assert matrix.shape == (5, 64)

    def test_balanced_bits(self, rng):
        vector = random_hypervector(10_000, rng)
        assert 0.45 < vector.mean() < 0.55

    def test_invalid_dim(self, rng):
        with pytest.raises(ValueError):
            random_hypervector(0, rng)
        with pytest.raises(ValueError):
            random_hypervectors(0, 8, rng)


class TestBind:
    @given(dims, st.integers(0, 2 ** 31), st.integers(0, 2 ** 31))
    def test_self_inverse(self, dim, seed_a, seed_b):
        a, b = _vector(dim, seed_a), _vector(dim, seed_b)
        assert np.array_equal(bind(bind(a, b), b), a)

    @given(dims, st.integers(0, 2 ** 31))
    def test_identity_with_zero(self, dim, seed):
        a = _vector(dim, seed)
        assert np.array_equal(bind(a, np.zeros(dim, np.uint8)), a)

    @given(dims, st.integers(0, 2 ** 31), st.integers(0, 2 ** 31))
    def test_commutative(self, dim, seed_a, seed_b):
        a, b = _vector(dim, seed_a), _vector(dim, seed_b)
        assert np.array_equal(bind(a, b), bind(b, a))

    def test_binding_decorrelates(self, rng):
        a = random_hypervector(10_000, rng)
        b = random_hypervector(10_000, rng)
        bound = bind(a, b)
        # Bound vector is ~orthogonal to both factors.
        assert abs(np.bitwise_xor(bound, a).mean() - 0.5) < 0.05
        assert abs(np.bitwise_xor(bound, b).mean() - 0.5) < 0.05


class TestBundle:
    def test_majority_of_three(self):
        stack = np.asarray(
            [[1, 1, 0, 0], [1, 0, 1, 0], [1, 0, 0, 1]], dtype=np.uint8
        )
        assert bundle(stack).tolist() == [1, 0, 0, 0]

    def test_tie_policies(self):
        stack = np.asarray([[1, 0], [0, 1]], dtype=np.uint8)
        assert bundle(stack, tie="one").tolist() == [1, 1]
        assert bundle(stack, tie="zero").tolist() == [0, 0]

    def test_bundle_preserves_similarity(self, rng):
        vectors = random_hypervectors(5, 10_000, rng)
        combined = bundle(vectors)
        for row in vectors:
            # Each input is closer to the bundle than an unrelated vector.
            unrelated = random_hypervector(10_000, rng)
            assert (
                np.bitwise_xor(combined, row).sum()
                < np.bitwise_xor(combined, unrelated).sum()
            )

    def test_single_vector_is_identity(self, rng):
        vector = random_hypervector(32, rng)
        assert np.array_equal(bundle(vector[None, :]), vector)

    def test_errors(self):
        with pytest.raises(ValueError):
            bundle(np.empty((0, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            bundle(np.ones((2, 4), dtype=np.uint8), tie="coin")


class TestPermute:
    @given(dims, st.integers(0, 2 ** 31), st.integers(-8, 8))
    def test_roundtrip(self, dim, seed, shift):
        vector = _vector(dim, seed)
        assert np.array_equal(permute(permute(vector, shift), -shift), vector)

    def test_shift_semantics(self):
        vector = np.asarray([1, 0, 0, 0], dtype=np.uint8)
        assert permute(vector, 1).tolist() == [0, 1, 0, 0]


class TestInvert:
    @given(dims, st.integers(0, 2 ** 31))
    def test_involution(self, dim, seed):
        vector = _vector(dim, seed)
        assert np.array_equal(invert(invert(vector)), vector)

    def test_full_distance(self, rng):
        vector = random_hypervector(128, rng)
        assert np.bitwise_xor(vector, invert(vector)).sum() == 128


class TestFlip:
    @given(
        st.integers(min_value=1, max_value=256),
        st.data(),
    )
    def test_exact_flip_count(self, dim, data):
        count = data.draw(st.integers(min_value=0, max_value=dim))
        vector = _vector(dim, 1)
        out = flip_bits(vector, count, np.random.default_rng(2))
        assert np.bitwise_xor(vector, out).sum() == count

    def test_flipped_weight(self, rng):
        t = flipped(100, 17, rng)
        assert t.sum() == 17

    def test_errors(self, rng):
        vector = _vector(16, 0)
        with pytest.raises(ValueError):
            flip_bits(vector, -1, rng)
        with pytest.raises(ValueError):
            flip_bits(vector, 17, rng)
        with pytest.raises(ValueError):
            flipped(4, 5, rng)


class TestValidate:
    def test_accepts_binary(self):
        assert validate_hypervector([0, 1, 1]).dtype == np.uint8

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            validate_hypervector([0, 2, 1])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            validate_hypervector(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_hypervector(np.zeros(0))
