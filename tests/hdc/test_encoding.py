"""Tests for the codebook encoder (Eq. 1)."""

import numpy as np
import pytest

from repro.hashfn import HashFamily
from repro.hdc import CodebookEncoder, circular_basis


@pytest.fixture
def encoder(rng):
    return CodebookEncoder(circular_basis(32, 256, rng), HashFamily(seed=4))


class TestPositions:
    def test_position_is_word_mod_n(self, encoder):
        family = encoder.family
        for key in ("a", "b", 17):
            assert encoder.position(key) == family.word(key) % 32

    def test_vectorized_matches_scalar(self, encoder, rng):
        words = rng.integers(0, 2 ** 64, 100, dtype=np.uint64)
        positions = encoder.positions_of_words(words)
        assert positions.tolist() == [
            encoder.position_of_word(int(word)) for word in words
        ]

    def test_positions_in_range(self, encoder, rng):
        words = rng.integers(0, 2 ** 64, 500, dtype=np.uint64)
        positions = encoder.positions_of_words(words)
        assert positions.min() >= 0 and positions.max() < 32


class TestEncodings:
    def test_encode_returns_codebook_row(self, encoder):
        key = "server-9"
        assert np.array_equal(
            encoder.encode(key), encoder.codebook[encoder.position(key)]
        )

    def test_encode_packed_consistent(self, encoder):
        key = "server-9"
        assert np.array_equal(
            encoder.encode_packed(key),
            encoder.codebook.packed()[encoder.position(key)],
        )

    def test_same_key_same_encoding(self, encoder):
        assert np.array_equal(encoder.encode("x"), encoder.encode("x"))

    def test_properties(self, encoder):
        assert encoder.size == 32
        assert encoder.dim == 256

    def test_empty_codebook_rejected(self, rng):
        from repro.hdc import BasisSet

        with pytest.raises(ValueError):
            CodebookEncoder(
                BasisSet("random", np.zeros((0, 8), np.uint8)), HashFamily()
            )
