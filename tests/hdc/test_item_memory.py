"""Tests for the associative item memory."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdc import ItemMemory, pack_bits


def _bits(count, dim, seed):
    return np.random.default_rng(seed).integers(0, 2, (count, dim), dtype=np.uint8)


class TestLifecycle:
    def test_add_and_introspect(self):
        memory = ItemMemory(dim=64)
        memory.add("a", _bits(1, 64, 0)[0])
        assert len(memory) == 1
        assert "a" in memory
        assert memory.labels == ("a",)
        assert memory.index_of("a") == 0

    def test_duplicate_label_rejected(self):
        memory = ItemMemory(dim=32)
        memory.add("a", _bits(1, 32, 0)[0])
        with pytest.raises(ValueError):
            memory.add("a", _bits(1, 32, 1)[0])

    def test_remove_compacts_preserving_order(self):
        memory = ItemMemory(dim=32)
        rows = _bits(4, 32, 0)
        for index, label in enumerate("abcd"):
            memory.add(label, rows[index])
        memory.remove("b")
        assert memory.labels == ("a", "c", "d")
        # Row content stays aligned with the surviving labels.
        for offset, label in enumerate(("a", "c", "d")):
            original = {"a": 0, "c": 2, "d": 3}[label]
            assert np.array_equal(
                memory.memory_view()[offset], pack_bits(rows[original])
            )

    def test_remove_unknown_raises(self):
        memory = ItemMemory(dim=8)
        with pytest.raises(KeyError):
            memory.remove("ghost")

    def test_growth_beyond_initial_capacity(self):
        memory = ItemMemory(dim=16)
        rows = _bits(40, 16, 1)
        for index in range(40):
            memory.add(index, rows[index])
        assert len(memory) == 40
        for index in (0, 17, 39):
            __, label, distance = memory.query(rows[index])
            assert label == index and distance == 0

    def test_bad_row_shape(self):
        memory = ItemMemory(dim=16)
        with pytest.raises(ValueError):
            memory.add_packed("a", np.zeros(3, dtype=np.uint8))

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            ItemMemory(dim=0)


class TestQueries:
    def test_exact_match(self):
        memory = ItemMemory(dim=128)
        rows = _bits(6, 128, 2)
        for index in range(6):
            memory.add(index, rows[index])
        for index in range(6):
            __, label, distance = memory.query(rows[index])
            assert label == index
            assert distance == 0

    @given(seed=st.integers(0, 2 ** 31), dim=st.integers(8, 128))
    def test_matches_brute_force(self, seed, dim):
        rows = _bits(7, dim, seed)
        query = _bits(1, dim, seed + 1)[0]
        memory = ItemMemory(dim=dim)
        for index in range(7):
            memory.add(index, rows[index])
        __, label, distance = memory.query(query)
        brute = [int(np.bitwise_xor(query, row).sum()) for row in rows]
        assert distance == min(brute)
        assert label == brute.index(min(brute))  # earliest-inserted tie-break

    def test_tie_breaks_to_earliest(self):
        memory = ItemMemory(dim=16)
        row = _bits(1, 16, 3)[0]
        memory.add("first", row)
        memory.add("second", row)  # identical content
        __, label, __d = memory.query(row)
        assert label == "first"

    def test_batch_matches_scalar(self):
        dim = 100
        rows = _bits(9, dim, 4)
        queries = _bits(13, dim, 5)
        memory = ItemMemory(dim=dim)
        for index in range(9):
            memory.add(index, rows[index])
        indices, distances = memory.query_batch(pack_bits(queries))
        for q in range(13):
            index, __, distance = memory.query(queries[q])
            assert indices[q] == index
            assert distances[q] == distance

    def test_empty_memory_raises(self):
        memory = ItemMemory(dim=8)
        with pytest.raises(LookupError):
            memory.query(np.zeros(8, dtype=np.uint8))
        with pytest.raises(LookupError):
            memory.query_batch(np.zeros((1, 8), dtype=np.uint8))


class TestLiveness:
    def test_memory_view_flips_affect_queries(self):
        """A bit flipped through the view must change the next query --
        the property the fault injector depends on."""
        dim = 64
        memory = ItemMemory(dim=dim)
        row = np.zeros(dim, dtype=np.uint8)
        memory.add("z", row)
        query = np.zeros(dim, dtype=np.uint8)
        assert memory.query(query)[2] == 0
        memory.memory_view()[0, 0] ^= 0b0000_0001  # flip stored bit 0
        assert memory.query(query)[2] == 1

    def test_view_shape_tracks_population(self):
        memory = ItemMemory(dim=16)
        assert memory.memory_view().shape == (0, 8)
        memory.add("a", np.zeros(16, dtype=np.uint8))
        assert memory.memory_view().shape == (1, 8)
