"""Tests for compound HDC data structures (records, sequences, cleanup)."""

import numpy as np
import pytest

from repro.hdc.structures import (
    Vocabulary,
    encode_record,
    encode_sequence,
    query_record,
    sequence_similarity,
)


@pytest.fixture
def vocab(rng):
    return Vocabulary(dim=8_192, rng=rng)


class TestVocabulary:
    def test_symbols_assigned_once(self, vocab):
        first = vocab.vector("x")
        again = vocab.vector("x")
        assert np.array_equal(first, again)
        assert len(vocab) == 1

    def test_distinct_symbols_orthogonal(self, vocab):
        from repro.hdc import cosine_similarity

        a, b = vocab.vector("a"), vocab.vector("b")
        assert abs(float(cosine_similarity(a, b))) < 0.1

    def test_cleanup_on_empty_raises(self, rng):
        empty = Vocabulary(dim=64, rng=rng)
        with pytest.raises(LookupError):
            empty.cleanup(np.zeros(64, dtype=np.uint8))

    def test_invalid_dim(self, rng):
        with pytest.raises(ValueError):
            Vocabulary(dim=0, rng=rng)


class TestRecords:
    def test_roundtrip_all_fields(self, vocab):
        fields = {"city": "irvine", "venue": "dac", "year": "2022"}
        record = encode_record(vocab, fields)
        for role, value in fields.items():
            recovered, similarity = query_record(vocab, record, role)
            assert recovered == value
            assert similarity > 0.25

    def test_similarity_degrades_with_field_count(self, vocab):
        small = encode_record(vocab, {"r1": "v1", "r2": "v2"})
        fields = {"r{}".format(i): "v{}".format(i) for i in range(8)}
        large = encode_record(vocab, fields)
        __, sim_small = query_record(vocab, small, "r1")
        __, sim_large = query_record(vocab, large, "r1")
        assert sim_small > sim_large > 0.0

    def test_unbinding_wrong_role_gives_noise(self, vocab):
        record = encode_record(vocab, {"role": "value"})
        vocab.vector("unrelated")
        recovered, similarity = query_record(vocab, record, "ghost-role")
        # Cleanup returns *something*, but with near-zero confidence.
        assert similarity < 0.2 or recovered == "value"

    def test_empty_record_rejected(self, vocab):
        with pytest.raises(ValueError):
            encode_record(vocab, {})


class TestSequences:
    def test_order_matters(self, vocab):
        forward = sequence_similarity(vocab, "abc", "abc")
        scrambled = sequence_similarity(vocab, "abc", "cba")
        assert forward == pytest.approx(1.0)
        assert abs(scrambled) < 0.15

    def test_single_symbol_sequence(self, vocab):
        encoded = encode_sequence(vocab, ["x"])
        assert np.array_equal(encoded, vocab.vector("x"))

    def test_shared_prefix_is_not_enough(self, vocab):
        # Binding (unlike bundling) makes any symbol change catastrophic:
        # n-grams behave like exact-match fingerprints.
        similar = sequence_similarity(vocab, "abcd", "abce")
        assert abs(similar) < 0.15

    def test_empty_sequence_rejected(self, vocab):
        with pytest.raises(ValueError):
            encode_sequence(vocab, [])
