"""Tests for the periodic encoder (Section 6 future work)."""

import pytest

from repro.hdc import PeriodicEncoder, circular_distance


class TestCircularDistance:
    def test_wrapping(self):
        assert circular_distance(23.0, 1.0, 24.0) == pytest.approx(2.0)
        assert circular_distance(1.0, 23.0, 24.0) == pytest.approx(2.0)

    def test_same_point(self):
        assert circular_distance(5.0, 5.0, 24.0) == 0.0

    def test_half_period_max(self):
        assert circular_distance(0.0, 12.0, 24.0) == pytest.approx(12.0)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            circular_distance(0.0, 1.0, 0.0)


@pytest.fixture
def hours(rng):
    return PeriodicEncoder(period=24.0, resolution=24, dim=4_096, rng=rng)


class TestEncoder:
    def test_node_mapping_wraps(self, hours):
        assert hours.node_of(0.0) == 0
        assert hours.node_of(24.0) == 0
        assert hours.node_of(25.0) == 1
        assert hours.node_of(-1.0) == 23

    def test_roundtrip_at_node_centres(self, hours):
        for hour in range(24):
            assert hours.decode(hours.encode(float(hour))) == pytest.approx(
                float(hour)
            )

    def test_similarity_respects_wraparound(self, hours):
        late_vs_early = hours.similarity(23.0, 1.0)
        late_vs_noon = hours.similarity(23.0, 12.0)
        assert late_vs_early > late_vs_noon

    def test_similarity_decreases_with_circular_distance(self, hours):
        values = [hours.similarity(0.0, float(h)) for h in range(13)]
        assert all(a >= b - 0.08 for a, b in zip(values, values[1:]))

    def test_prototype_decodes_near_members(self, hours):
        prototype = hours.prototype([22.0, 23.0, 0.0, 1.0, 2.0])
        decoded = hours.decode(prototype)
        assert circular_distance(decoded, 0.0, 24.0) <= 2.0

    def test_invalid_construction(self, rng):
        with pytest.raises(ValueError):
            PeriodicEncoder(period=0.0, resolution=8, dim=64, rng=rng)
        with pytest.raises(ValueError):
            PeriodicEncoder(period=24.0, resolution=1, dim=64, rng=rng)

    def test_properties(self, hours):
        assert hours.period == 24.0
        assert hours.resolution == 24
        assert hours.basis.kind == "circular"
