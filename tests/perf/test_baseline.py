"""Unit tests for the BENCH_throughput.json schema and regression gate.

These run on synthetic reports (no timing), so they belong to tier-1;
the measured suite lives in ``benchmarks/perf``.
"""

from __future__ import annotations

import copy

import pytest

from repro.perf import (
    SCHEMA_VERSION,
    compare_reports,
    format_report,
    load_report,
    save_report,
)
from repro.perf.baseline import METRICS, Regression, coverage_drift
from repro.perf.profiles import PERF_PROFILES, perf_profile


def _record(scale: float) -> dict:
    return {
        "servers": 16,
        "batch_words": 8_192,
        "config": {},
        "route": {"keys_per_s": 1e7 * scale, "normalized": 2.0 * scale},
        "route_replicas": {
            "keys_per_s": 4e6 * scale,
            "normalized": 0.8 * scale,
        },
        "cluster_route": {
            "keys_per_s": 6e6 * scale,
            "normalized": 1.2 * scale,
        },
        "lookup": {"keys_per_s": 8e6 * scale, "normalized": 1.6 * scale},
        "churn": {"events_per_s": 1e5 * scale, "normalized": 0.02 * scale},
        "plan_migration": {
            "keys_per_s": 3e6 * scale,
            "normalized": 0.6 * scale,
        },
        "migrate_execute": {
            "keys_per_s": 2e5 * scale,
            "normalized": 0.04 * scale,
        },
        "control_tick": {
            "ticks_per_s": 5e3 * scale,
            "normalized": 0.001 * scale,
        },
        "serve_hot": {
            "requests_per_s": 9e6 * scale,
            "normalized": 2.7 * scale,
        },
        "serve_cold": {
            "requests_per_s": 4e6 * scale,
            "normalized": 1.2 * scale,
        },
        "epoch_close": {
            "keys_per_s": 5e7 * scale,
            "normalized": 10.0 * scale,
        },
    }


def _report(**scales) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "repro-throughput",
        "profile": "fast",
        "seed": 0,
        "python": "3.11",
        "numpy": "2.0",
        "calibration": {"xor_popcount_gbps": 5.0},
        "algorithms": {name: _record(scale) for name, scale in scales.items()},
    }


class TestArtifactIO:
    def test_roundtrip(self, tmp_path):
        report = _report(hd=1.0, modular=1.0)
        path = str(tmp_path / "BENCH_throughput.json")
        save_report(report, path)
        assert load_report(path) == report

    def test_schema_mismatch_rejected(self, tmp_path):
        report = _report(hd=1.0)
        report["schema"] = SCHEMA_VERSION + 1
        path = str(tmp_path / "bad.json")
        save_report(report, path)
        with pytest.raises(ValueError):
            load_report(path)

    def test_missing_algorithms_rejected(self, tmp_path):
        path = str(tmp_path / "empty.json")
        save_report({"schema": SCHEMA_VERSION}, path)
        with pytest.raises(ValueError):
            load_report(path)


class TestRegressionGate:
    def test_identical_reports_pass(self):
        report = _report(hd=1.0, jump=1.0)
        assert compare_reports(report, report) == []

    def test_drop_beyond_tolerance_flagged_per_metric(self):
        baseline = _report(hd=1.0, jump=1.0)
        current = copy.deepcopy(baseline)
        current["algorithms"]["hd"] = _record(0.4)  # -60 % on all metrics
        regressions = compare_reports(current, baseline, tolerance=0.30)
        assert {(r.algorithm, r.metric) for r in regressions} == {
            ("hd", metric) for metric in METRICS
        }
        for regression in regressions:
            assert regression.ratio == pytest.approx(0.4)
            assert "hd/" in regression.describe()

    def test_churn_gets_a_wider_tolerance(self):
        # Churn blocks scatter ~2x run to run; a -45 % churn drop is
        # noise (within CHURN_TOLERANCE), -55 % is a regression.
        baseline = _report(hd=1.0)
        noisy = copy.deepcopy(baseline)
        noisy["algorithms"]["hd"]["churn"]["normalized"] *= 0.55
        assert compare_reports(noisy, baseline, tolerance=0.30) == []
        broken = copy.deepcopy(baseline)
        broken["algorithms"]["hd"]["churn"]["normalized"] *= 0.45
        regressions = compare_reports(broken, baseline, tolerance=0.30)
        assert [(r.algorithm, r.metric) for r in regressions] == [
            ("hd", "churn")
        ]

    def test_drop_within_tolerance_passes(self):
        baseline = _report(hd=1.0)
        current = _report(hd=0.75)  # -25 % < 30 % tolerance
        assert compare_reports(current, baseline, tolerance=0.30) == []

    def test_improvement_never_flags(self):
        baseline = _report(hd=1.0)
        current = _report(hd=5.0)
        assert compare_reports(current, baseline) == []

    def test_profile_mismatch_rejected(self):
        baseline = _report(hd=1.0)
        current = copy.deepcopy(baseline)
        current["profile"] = "bench"
        with pytest.raises(ValueError):
            compare_reports(current, baseline)

    def test_bad_tolerance_rejected(self):
        report = _report(hd=1.0)
        with pytest.raises(ValueError):
            compare_reports(report, report, tolerance=1.5)

    def test_missing_algorithm_is_drift_not_regression(self):
        baseline = _report(hd=1.0, jump=1.0)
        current = _report(hd=1.0)
        assert compare_reports(current, baseline) == []
        missing, added = coverage_drift(current, baseline)
        assert missing == ("jump",)
        assert added == ()

    def test_ratio_of_zero_baseline(self):
        regression = Regression("hd", "route", baseline=0.0, current=1.0)
        assert regression.ratio == float("inf")


class TestProfilesAndFormatting:
    def test_profiles_scale_monotonically(self):
        fast, bench, full = (
            PERF_PROFILES["fast"],
            PERF_PROFILES["bench"],
            PERF_PROFILES["full"],
        )
        assert fast.servers < bench.servers < full.servers
        assert fast.batch_words < bench.batch_words < full.batch_words

    def test_unknown_profile_names_the_options(self):
        with pytest.raises(KeyError, match="fast"):
            perf_profile("warp")

    def test_config_for_returns_copy(self):
        profile = perf_profile("fast")
        config = profile.config_for("hd")
        config["dim"] = 1
        assert profile.config_for("hd")["dim"] != 1

    def test_format_report_mentions_rates(self):
        text = format_report(_report(hd=1.0))
        assert "hd" in text
        assert "route" in text
