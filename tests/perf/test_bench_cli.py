"""End-to-end tests of `repro bench` (one cheap algorithm, fast profile)."""

from __future__ import annotations

import copy
import io

import pytest

from repro.cli import main
from repro.perf import load_report, save_report


def _bench(tmp_path, *extra):
    out = io.StringIO()
    path = str(tmp_path / "report.json")
    code = main(
        [
            "bench",
            "--profile",
            "fast",
            "--algorithms",
            "modular",
            "--output",
            path,
        ]
        + list(extra),
        out=out,
    )
    return code, path, out.getvalue()


class TestBenchCommand:
    def test_writes_report(self, tmp_path):
        code, path, text = _bench(tmp_path)
        assert code == 0
        report = load_report(path)
        assert set(report["algorithms"]) == {"modular"}
        assert "modular" in text

    def test_check_against_equal_baseline_passes(self, tmp_path):
        __, path, __ = _bench(tmp_path)
        report = load_report(path)
        baseline_path = str(tmp_path / "baseline.json")
        save_report(report, baseline_path)
        # This exercises the gate plumbing, not machine stability: the
        # baseline is a *fresh measurement*, so a loaded host can
        # legitimately scatter a microsecond-scale metric past the
        # default 30% between the two runs.  A wide explicit tolerance
        # keeps the test about the exit code and report wiring.
        code, __, text = _bench(
            tmp_path, "--check", baseline_path, "--tolerance", "0.8"
        )
        assert code == 0
        assert "OK" in text

    def test_check_fails_on_regression(self, tmp_path):
        __, path, __ = _bench(tmp_path)
        report = load_report(path)
        inflated = copy.deepcopy(report)
        for metric in ("route", "lookup", "churn"):
            inflated["algorithms"]["modular"][metric]["normalized"] *= 100.0
        baseline_path = str(tmp_path / "baseline.json")
        save_report(inflated, baseline_path)
        code, __, text = _bench(tmp_path, "--check", baseline_path)
        assert code == 1
        assert "FAIL" in text

    def test_check_missing_baseline_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            _bench(tmp_path, "--check", str(tmp_path / "nope.json"))

    def test_unknown_algorithm_is_an_error(self, tmp_path):
        out = io.StringIO()
        with pytest.raises(SystemExit):
            main(["bench", "--profile", "fast", "--algorithms", "warp"], out=out)
