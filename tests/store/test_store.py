"""The data plane: per-server stores, routed reads/writes, accounting."""

import numpy as np
import pytest

from repro.hashing import make_table
from repro.service import Router
from repro.store import DataPlane, ServerStore, item_nbytes


def plane_with_fleet(n=8, algorithm="consistent"):
    router = Router(make_table(algorithm, seed=3))
    router.sync("srv-{}".format(i) for i in range(n))
    return DataPlane(router)


class TestServerStore:
    def test_put_get_delete_roundtrip(self):
        store = ServerStore("s0")
        store.put("k", b"value")
        assert store.get("k") == b"value"
        assert "k" in store and len(store) == 1
        assert store.delete("k") == b"value"
        assert "k" not in store and len(store) == 0

    def test_get_missing_raises_unless_default(self):
        store = ServerStore("s0")
        with pytest.raises(KeyError):
            store.get("ghost")
        assert store.get("ghost", 42) == 42
        with pytest.raises(KeyError):
            store.delete("ghost")

    def test_stored_none_is_not_missing(self):
        store = ServerStore("s0")
        store.put("k", None)
        assert store.get("k", "default") is None

    def test_byte_accounting_tracks_mutations(self):
        store = ServerStore("s0")
        assert store.nbytes == 0
        store.put("key", b"12345")
        assert store.nbytes == item_nbytes("key") + 5
        store.put("key", b"1234567890")  # overwrite re-accounts
        assert store.nbytes == item_nbytes("key") + 10
        store.delete("key")
        assert store.nbytes == 0

    def test_item_nbytes_is_deterministic(self):
        assert item_nbytes(b"abc") == 3
        assert item_nbytes("abc") == 3
        assert item_nbytes(7) == 8
        assert item_nbytes(1.5) == 8
        assert item_nbytes(None) == 0
        assert item_nbytes(np.zeros(4, dtype=np.int64)) == 32

    def test_bulk_operations(self):
        store = ServerStore("s0")
        charged = store.put_many([1, 2, 3], ["a", "b", "c"])
        assert charged == store.nbytes
        values, found = store.get_many([1, 9, 3], default="?")
        assert values == ["a", "?", "c"]
        assert found.tolist() == [True, False, True]
        hits = store.delete_many([1, 9])
        assert hits.tolist() == [1, 0]
        assert store.keys() == (2, 3)
        with pytest.raises(ValueError):
            store.put_many([1, 2], ["only-one"])

    def test_bulk_accounting_matches_scalar(self):
        # The bulk paths vectorize the byte accounting; every mixed
        # batch below must land on exactly the per-item sums.
        values = ["abc", 7, None, b"xy", np.zeros(3, dtype=np.int64), "123"]
        keys = list(range(len(values)))
        scalar = ServerStore("scalar")
        for key, value in zip(keys, values):
            scalar.put(key, value)
        bulk = ServerStore("bulk")
        charged = bulk.put_many(keys, values)
        assert bulk.nbytes == scalar.nbytes
        assert charged == sum(
            item_nbytes(k) + item_nbytes(v) for k, v in zip(keys, values)
        )
        # Overwrites re-account in bulk exactly as per-key puts do.
        bulk.put_many(keys[:2], ["zz", "longer-value"])
        scalar.put(keys[0], "zz")
        scalar.put(keys[1], "longer-value")
        assert bulk.nbytes == scalar.nbytes
        # Deletes release the same bytes, partial hits included.
        bulk.delete_many(keys + ["ghost"])
        for key in keys:
            scalar.delete(key)
        assert bulk.nbytes == scalar.nbytes == 0

    def test_put_many_duplicate_keys_match_sequential_puts(self):
        sequential = ServerStore("seq")
        for key, value in [(1, "a"), (1, "bb"), (2, "c")]:
            sequential.put(key, value)
        bulk = ServerStore("bulk")
        charged = bulk.put_many([1, 1, 2], ["a", "bb", "c"])
        assert bulk.nbytes == sequential.nbytes
        assert charged == sum(
            item_nbytes(k) + item_nbytes(v)
            for k, v in [(1, "a"), (1, "bb"), (2, "c")]
        )
        assert bulk.get(1) == "bb"

    def test_item_bytes_many_matches_scalar_probe(self):
        store = ServerStore("s0")
        store.put_many([1, "two"], [b"xyz", 9])
        probes = store.item_bytes_many([1, "ghost", "two"])
        assert probes.tolist() == [
            store.item_bytes(1),
            0,
            store.item_bytes("two"),
        ]

    def test_clone_is_independent(self):
        store = ServerStore("s0")
        store.put("k", "v")
        twin = store.clone()
        twin.put("k2", "v2")
        assert "k2" not in store
        assert twin.nbytes > store.nbytes


class TestDataPlane:
    def test_put_routes_to_current_owner(self):
        plane = plane_with_fleet()
        owner = plane.put("user:1", "profile")
        assert owner == plane.router.route("user:1")
        assert plane.store(owner).get("user:1") == "profile"
        assert plane.get("user:1") == "profile"
        assert "user:1" in plane

    def test_get_missing_raises_unless_default(self):
        plane = plane_with_fleet()
        with pytest.raises(KeyError):
            plane.get("ghost")
        assert plane.get("ghost", None) is None
        with pytest.raises(KeyError):
            plane.delete("ghost")

    def test_put_many_places_every_key_at_its_owner(self):
        plane = plane_with_fleet()
        keys = np.arange(500, dtype=np.int64)
        owners = plane.put_many(keys, keys * 2)
        assert plane.key_count == 500
        routed = plane.router.route_batch(keys)
        assert list(owners) == list(routed)
        values, found = plane.get_many(keys)
        assert found.all()
        assert list(values) == [int(k) * 2 for k in keys]

    def test_reroute_makes_in_flight_keys_miss(self):
        # The property live migration depends on: reads consult the
        # *current* routing, so a rerouted-but-not-moved key misses.
        plane = plane_with_fleet(n=8, algorithm="modular")
        keys = np.arange(200, dtype=np.int64)
        plane.put_many(keys, keys)
        plane.router.sync("srv-{}".format(i) for i in range(9))
        __, found = plane.get_many(keys)
        assert 0 < found.sum() < 200  # moved keys miss, others hit

    def test_accounting_and_stats(self):
        plane = plane_with_fleet()
        plane.put_many(["a", "b", "c"], [b"1", b"22", b"333"])
        assert plane.total_bytes == sum(
            item_nbytes(k) + item_nbytes(v)
            for k, v in zip(["a", "b", "c"], [b"1", b"22", b"333"])
        )
        stats = plane.stats()
        assert sum(entry["keys"] for entry in stats.values()) == 3
        assert len(plane) == 3

    def test_keys_preserve_mixed_types(self):
        # np.asarray on mixed int/str keys would coerce everything to
        # strings, making migration plans name keys that don't exist.
        plane = plane_with_fleet()
        plane.put("user:x", b"a")
        plane.put(7, b"b")
        keys = plane.keys()
        assert keys.dtype == object
        assert set(keys.tolist()) == {"user:x", 7}

    def test_integer_keys_stay_vectorizable(self):
        plane = plane_with_fleet()
        plane.put_many(np.arange(50, dtype=np.int64), range(50))
        assert plane.keys().dtype.kind == "i"

    def test_track_installs_stored_keys_as_probes(self):
        plane = plane_with_fleet()
        keys = np.arange(300, dtype=np.int64)
        plane.put_many(keys, keys)
        assert plane.track() == 300
        assert set(plane.router.probe_keys.tolist()) == set(keys.tolist())

    def test_prune_drops_only_empty_foreign_stores(self):
        plane = plane_with_fleet(n=4)
        keys = np.arange(100, dtype=np.int64)
        plane.put_many(keys, keys)
        occupied = {s for s, st in plane.stores.items() if len(st)}
        plane.store("retired")  # empty store of a non-member
        assert plane.prune() == ("retired",)
        assert set(plane.stores) == occupied

    def test_clone_shares_router_but_not_stores(self):
        plane = plane_with_fleet()
        plane.put("k", "v")
        twin = plane.clone()
        twin.delete("k")
        assert plane.get("k") == "v"
        assert twin.router is plane.router


class TestFleetImbalance:
    def _plane(self, weights):
        from repro.hashing import weighted_table
        from repro.service import Router
        from repro.store import DataPlane

        router = Router(weighted_table("rendezvous", seed=6))
        for server_id, weight in weights.items():
            router.join(server_id, weight=weight)
        plane = DataPlane(router)
        keys = np.arange(4_000, dtype=np.int64)
        plane.put_many(keys, [b"x" * 32] * keys.size)
        return plane

    def test_weighted_stats_carry_load_factors(self):
        weights = {"a": 1.0, "b": 2.0, "c": 4.0}
        plane = self._plane(weights)
        stats = plane.stats(weights)
        for server_id, record in stats.items():
            assert record["weight"] == weights[server_id]
            assert 0.5 < record["keys_ratio"] < 1.5
            assert 0.5 < record["bytes_ratio"] < 1.5
        # Raw counts still proportional to weights (ratio near 1.0
        # means the heavy server holds ~4x the light one).
        assert stats["c"]["keys"] > 2.5 * stats["a"]["keys"]

    def test_unweighted_stats_shape_unchanged(self):
        plane = self._plane({"a": 1.0, "b": 1.0})
        stats = plane.stats()
        assert set(stats["a"]) == {"keys", "bytes"}

    def test_imbalance_vs_weight_proportional_ideal(self):
        weights = {"a": 1.0, "b": 2.0, "c": 4.0}
        plane = self._plane(weights)
        summary = plane.imbalance(weights)
        assert summary.servers == 3
        assert summary.total_keys == 4_000
        # Placement tracks the weights: max/ideal close to 1.
        assert 1.0 <= summary.keys_max_ratio < 1.3
        assert 0.7 < summary.keys_mean_ratio < 1.3
        assert 1.0 <= summary.bytes_max_ratio < 1.3
        # Judged against *uniform* ideal instead, the weight-4 server
        # (4/7 of the data on 1/3 of the servers) is a ~1.7x hot spot
        # -- the weights are what keep it honest.
        uniform = plane.imbalance()
        assert uniform.keys_max_ratio > 1.5
        assert "fleet imbalance" in summary.describe()

    def test_imbalance_excludes_departed_stores(self):
        weights = {"a": 1.0, "b": 1.0, "c": 1.0}
        plane = self._plane(weights)
        plane.router.leave("c")
        summary = plane.imbalance()
        assert summary.servers == 2
        # c's stranded keys are a migration backlog, not fleet load.
        assert summary.total_keys < 4_000

    def test_empty_fleet_imbalance(self):
        from repro.hashing import make_table
        from repro.service import Router
        from repro.store import DataPlane

        plane = DataPlane(Router(make_table("modular")))
        summary = plane.imbalance()
        assert summary.servers == 0
        assert summary.keys_max_ratio == 0.0

    def test_keys_deduplicated_across_stores(self):
        """Mid-drain a key legitimately lives in two stores; the probe
        population must count it once."""
        plane = self._plane({"a": 1.0, "b": 1.0})
        key = int(plane.store("a").keys()[0])
        plane.store("b").put(key, b"copy")
        keys = plane.keys()
        assert keys.size == 4_000
        assert plane.key_count == 4_001  # raw store total still sees both
