"""``DataPlane.delete_many``: one route pass, scalar-exact semantics.

The bulk delete promises bit-equivalence with the scalar loop (each
key deleted at its *assigned* owner, ``KeyError`` swallowed into a
``False`` mask slot) on every observable surface: the returned mask,
per-store contents, byte accounting, and the mutation counter.  The
equivalence is asserted across the full algorithm registry -- routing
disagreements between ``assign`` and ``assign_batch`` would surface
here as mask or accounting drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import make_table, registered_algorithms
from repro.service import Router
from repro.store import DataPlane


def _plane(algorithm="consistent", servers=8, seed=3):
    router = Router(make_table(algorithm, seed=seed))
    router.sync("srv-{}".format(index) for index in range(servers))
    return DataPlane(router)


def _scalar_delete_mask(plane, keys):
    """The oracle: loop scalar ``delete``, swallowing ``KeyError``."""
    mask = np.zeros(len(keys), dtype=bool)
    for position, key in enumerate(keys):
        try:
            plane.delete(key)
        except KeyError:
            continue
        mask[position] = True
    return mask


class TestDeleteMany:
    def test_mask_marks_only_removed_keys(self):
        plane = _plane()
        plane.put_many([1, 2, 3], ["a", "b", "c"])
        deleted = plane.delete_many([2, 99, 3])
        assert deleted.dtype == bool
        assert list(deleted) == [True, False, True]
        assert plane.get(1) == "a"
        assert plane.get(2, default=None) is None

    def test_empty_batch_is_a_noop(self):
        plane = _plane()
        plane.put_many([1], ["a"])
        before = plane.mutation_count
        deleted = plane.delete_many([])
        assert deleted.shape == (0,)
        assert plane.mutation_count == before

    def test_duplicate_key_deletes_first_position_only(self):
        # Sequential scalar semantics: the first occurrence removes the
        # key, the second finds it absent.
        plane = _plane()
        plane.put_many([7], ["v"])
        deleted = plane.delete_many([7, 7])
        assert list(deleted) == [True, False]
        assert plane.mutation_count == 1 + 1  # one put + one actual removal

    def test_numpy_key_batches_accepted(self):
        plane = _plane()
        keys = np.arange(10, dtype=np.int64)
        plane.put_many(keys, keys)
        deleted = plane.delete_many(keys[::2].copy())
        assert deleted.all()
        assert plane.key_count == 5

    def test_mutations_count_only_removals(self):
        plane = _plane()
        plane.put_many([1, 2], ["a", "b"])
        before = plane.mutation_count
        plane.delete_many([1, 99, 2, 98])
        assert plane.mutation_count == before + 2


class TestScalarEquivalence:
    @pytest.mark.parametrize("algorithm", sorted(registered_algorithms()))
    def test_batch_matches_scalar_loop_everywhere(self, algorithm):
        # Bit-exact across the registry: same mask, same per-store
        # occupancy, same byte accounting, same mutation counter.
        rng = np.random.default_rng(11)
        stored = [int(key) for key in rng.choice(500, size=120, replace=False)]
        batch_keys = [int(key) for key in rng.integers(0, 500, 90)]
        batch_keys += batch_keys[:10]  # guaranteed duplicates

        bulk = _plane(algorithm)
        scalar = _plane(algorithm)
        for plane in (bulk, scalar):
            plane.put_many(stored, stored)

        bulk_mask = bulk.delete_many(batch_keys)
        scalar_mask = _scalar_delete_mask(scalar, batch_keys)

        np.testing.assert_array_equal(bulk_mask, scalar_mask)
        assert bulk.mutation_count == scalar.mutation_count
        assert bulk.key_count == scalar.key_count
        assert bulk.total_bytes == scalar.total_bytes
        assert bulk.stats() == scalar.stats()

    def test_in_flight_keys_stay_invisible(self):
        # A membership change strands stored keys at their old owner;
        # like scalar delete, the bulk path only probes the *assigned*
        # store, so stranded keys report not-deleted and stay put.
        plane = _plane(servers=6)
        keys = list(range(200))
        plane.put_many(keys, keys)
        plane.router.sync(["srv-{}".format(index) for index in range(3)])
        stranded = [key for key in keys if plane.get(key, default=None) is None]
        if not stranded:
            pytest.skip("membership change stranded no keys at this seed")
        deleted = plane.delete_many(stranded)
        assert not deleted.any()
        assert plane.key_count == len(keys)
