"""Scale acceptance: a live 64 -> 80 reshard of a million keys.

The bulk migration engine's acceptance scenario: a populated 64-server
fleet grows to 80 servers, and the executor drains the resulting plan
in throttled ticks while read traffic keeps arriving.  Reads go through
the current routing the whole time, so keys that have been rerouted but
not yet copied miss -- the service-level question is whether the engine
moves data fast enough that the *overall* miss rate over the reshard
stays inside the SLA, and whether the fleet ends exactly consistent:
every key readable at its new owner, none lost, none duplicated.
"""

import numpy as np
import pytest

from repro.hashing import make_table
from repro.service import MigrationExecutor, Router
from repro.store import DataPlane

#: Keys resident during the reshard.
POPULATION = 1_000_000

#: Fleet size before and after the grow epoch.
SERVERS_BEFORE = 64
SERVERS_AFTER = 80

#: Executor throttle: keys admitted per tick.
KEYS_PER_TICK = 16_384

#: Reads sampled between consecutive ticks.
READS_PER_TICK = 2_048

#: Ceiling on the reshard-wide miss fraction of the live read stream.
MISS_SLA = 0.25


@pytest.fixture(scope="module")
def reshard():
    router = Router(make_table("hd", seed=9, dim=2_048, codebook_size=256))
    fleet = ["srv-{:03d}".format(i) for i in range(SERVERS_BEFORE)]
    router.sync(fleet)
    plane = DataPlane(router)
    keys = np.arange(POPULATION, dtype=np.int64)
    plane.put_many(keys, keys * 7)
    tracked = plane.track()
    grown = fleet + [
        "srv-{:03d}".format(i) for i in range(SERVERS_BEFORE, SERVERS_AFTER)
    ]
    record, plan = router.sync(grown)
    executor = MigrationExecutor(
        plan, plane, max_keys_per_tick=KEYS_PER_TICK
    )
    rng = np.random.default_rng(17)
    served = 0
    missed = 0
    while not executor.status.done:
        executor.tick()
        sample = rng.integers(0, POPULATION, READS_PER_TICK, dtype=np.int64)
        __, found = plane.get_many(sample)
        served += int(sample.size)
        missed += int(sample.size - found.sum())
    return {
        "plane": plane,
        "plan": plan,
        "record": record,
        "tracked": tracked,
        "executor": executor,
        "served": served,
        "missed": missed,
    }


class TestLiveReshardAcceptance:
    def test_plan_covers_a_real_resize(self, reshard):
        plan = reshard["plan"]
        assert reshard["tracked"] == POPULATION
        assert plan.tracked == POPULATION
        # A 64 -> 80 grow must move a meaningful slice (HD remaps near
        # the 16/80 minimum) but nowhere near everything.
        assert 0.05 < plan.moved_fraction < 0.5
        assert (
            len(plan.moves) / plan.tracked == reshard["record"].remap_fraction
        )

    def test_miss_rate_within_sla(self, reshard):
        miss_rate = reshard["missed"] / reshard["served"]
        assert miss_rate <= MISS_SLA, (
            "live reads missed {:.1%} during the reshard "
            "(SLA {:.0%})".format(miss_rate, MISS_SLA)
        )

    def test_zero_lost_keys(self, reshard):
        plane = reshard["plane"]
        executor = reshard["executor"]
        status = executor.status
        assert status.copied == status.committed == reshard["plan"].total_keys
        assert status.skipped == 0
        # Exactly one copy of every key fleet-wide...
        assert plane.key_count == POPULATION
        # ...and every single key readable at its routed owner.
        keys = np.arange(POPULATION, dtype=np.int64)
        values, found = plane.get_many(keys)
        assert bool(found.all())
        assert executor.verify() == reshard["plan"].total_keys

    def test_moved_values_survive_intact(self, reshard):
        plane = reshard["plane"]
        moves = list(reshard["plan"].moves)
        probe = moves[:: max(1, len(moves) // 512)]
        for move in probe:
            assert plane.store(move.destination).get(move.key) == move.key * 7
