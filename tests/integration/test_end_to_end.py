"""Integration tests across the whole stack.

These exercise the paths the paper's evaluation depends on: replica
equivalence (the premise of every mismatch measurement), the full
emulator pipeline under churn, and a miniature Figure-5 campaign with
the expected algorithm ordering.
"""

import numpy as np
import pytest

from repro import (
    ConsistentHashTable,
    HDHashTable,
    MismatchCampaign,
    ModularHashTable,
    RendezvousHashTable,
    SingleBitFlips,
)
from repro.analysis import uniformity_chi2
from repro.hashing import registered_algorithms
from repro.emulator import Emulator, HashTableModule, RequestGenerator, ZipfKeys

from ..conftest import populate


def _factories():
    return {
        "consistent": lambda: ConsistentHashTable(seed=11),
        "rendezvous": lambda: RendezvousHashTable(seed=11),
        "hd": lambda: HDHashTable(seed=11, dim=2_048, codebook_size=512),
    }


class TestReplicaEquivalence:
    """A pristine replica must agree bit-for-bit with the original --
    otherwise mismatch percentages would measure implementation noise."""

    @pytest.mark.parametrize("name", sorted(_factories()))
    def test_replay_equivalence_after_churn(self, name, request_words):
        factory = _factories()[name]

        def build(table):
            populate(table, 24)
            for victim in (3, 11, 17):
                table.leave(victim)
            table.join("late-a")
            table.join("late-b")
            return table

        original = build(factory())
        replica = build(factory())
        a = original.route_batch(request_words)
        b = replica.route_batch(request_words)
        assert np.array_equal(a, b)


class TestEmulatorPipeline:
    def test_full_pipeline_with_churn_and_zipf(self):
        generator = RequestGenerator(seed=21)
        table = HDHashTable(seed=11, dim=2_048, codebook_size=512)
        module = HashTableModule(table, batch_size=128)
        stream = list(generator.joins(range(16)))
        stream += list(
            generator.churn(
                list(range(16)),
                ["standby-{}".format(i) for i in range(4)],
                events=8,
                lookups_between=200,
                distribution=ZipfKeys(universe=5_000, exponent=1.1),
            )
        )
        report = module.process(stream)
        assert report.n_lookups == 8 * 200
        assert report.load.total == report.n_lookups
        assert table.server_count >= 1
        chi2 = uniformity_chi2(
            np.asarray(
                [table.server_ids.index(s) for s in report.assignment_array[-200:]]
            ),
            table.server_count,
        )
        assert np.isfinite(chi2)

    def test_emulator_timing_shape_rendezvous_vs_consistent(self):
        """Rendezvous per-request cost grows with k; consistent's doesn't
        (the Figure 4 shape at miniature scale)."""
        def timed(factory, k):
            emulator = Emulator(factory, vectorized=False, seed=3)
            report = emulator.run_standard(range(k), 400,
                                           record_assignments=False)
            return report.timing.mean_lookup_seconds

        slow_growth = timed(lambda: ConsistentHashTable(seed=5), 256) / timed(
            lambda: ConsistentHashTable(seed=5), 8
        )
        fast_growth = timed(lambda: RendezvousHashTable(seed=5), 256) / timed(
            lambda: RendezvousHashTable(seed=5), 8
        )
        assert fast_growth > 4 * slow_growth


class TestMiniatureFigure5:
    def test_algorithm_ordering_under_noise(self, request_words):
        """consistent >> rendezvous >> hd, at k=256 with 10 flips.

        Consistent hashing's mismatch is heavy-tailed (it depends on
        which bit of a ring position an upset hits), so the ordering is
        asserted on means over 8 seeded trials at a pool size where the
        gap is wide (paper Figure 5: consistent ~12-25%, rendezvous
        ~2*flips/k, hd ~0)."""
        k = 256
        rng = np.random.default_rng(31)
        factories = {
            "consistent": lambda: ConsistentHashTable(seed=11),
            "rendezvous": lambda: RendezvousHashTable(seed=11),
            "hd": lambda: HDHashTable(seed=11, dim=2_048, codebook_size=1_024),
        }
        mismatch = {}
        for name, factory in factories.items():
            table = populate(factory(), k)
            campaign = MismatchCampaign(table, request_words)
            outcome = campaign.run(SingleBitFlips(10), trials=8, rng=rng)
            mismatch[name] = outcome.mean_mismatch
        assert mismatch["hd"] < 0.02
        assert mismatch["hd"] < mismatch["rendezvous"]
        assert mismatch["rendezvous"] < mismatch["consistent"]

    def test_hd_robustness_headline_at_scale(self, request_words):
        """HD hashing with the paper's d=10000: a 10-bit upset leaves
        essentially every request on its pristine server."""
        table = populate(
            HDHashTable(seed=11, dim=10_000, codebook_size=1_024), 128
        )
        campaign = MismatchCampaign(table, request_words)
        outcome = campaign.run(
            SingleBitFlips(10), trials=3, rng=np.random.default_rng(41)
        )
        assert outcome.mean_mismatch < 0.005


class TestLiveMigrationInvariant:
    """The PR-4 acceptance invariant: after any ``sync()`` on a tracked
    DataPlane, executing the emitted MigrationPlan leaves every key
    readable at ``route(key)``, moves exactly the epoch's remap count,
    and HD's moved fraction on a +1-server resize stays near the
    minimal-movement ideal while modular's does not."""

    N_SERVERS = 16
    N_KEYS = 10_000

    def _resize_once(self, table):
        from repro.service import MigrationExecutor, Router
        from repro.store import DataPlane

        router = Router(table)
        fleet = ["node-{:02d}".format(i) for i in range(self.N_SERVERS)]
        router.sync(fleet)
        plane = DataPlane(router)
        keys = np.arange(self.N_KEYS, dtype=np.int64)
        plane.put_many(keys, keys)
        plane.track()
        record, plan = router.sync(fleet + ["node-new"])
        status = MigrationExecutor(plan, plane, max_keys_per_tick=777).run()
        return record, plan, status, plane, keys

    @pytest.mark.parametrize("name", ["hd", "modular", "consistent"])
    def test_every_key_readable_after_executing_the_plan(self, name):
        factories = {
            "hd": lambda: HDHashTable(seed=13, dim=2_048, codebook_size=256),
            "modular": lambda: ModularHashTable(seed=13),
            "consistent": lambda: ConsistentHashTable(seed=13),
        }
        record, plan, status, plane, keys = self._resize_once(
            factories[name]()
        )
        # keys moved equals the epoch's remap count, bit-exactly
        assert status.done and status.skipped == 0
        assert status.committed == plan.total_keys == record.probes_moved
        assert plan.moved_fraction == record.remap_fraction
        # every key readable at route(key)
        values, found = plane.get_many(keys)
        assert found.all()
        # and sitting in the store the router currently names
        owners = plane.router.route_batch(keys)
        for key, owner in zip(keys[::97], owners[::97]):
            assert plane.store(owner).get(int(key)) == int(key)

    def test_hd_moves_near_minimal_fraction_and_modular_does_not(self):
        ideal = 1.0 / (self.N_SERVERS + 1)
        __, hd_plan, __, __, __ = self._resize_once(
            HDHashTable(seed=13, dim=2_048, codebook_size=256)
        )
        __, mod_plan, __, __, __ = self._resize_once(ModularHashTable(seed=13))
        assert 0 < hd_plan.moved_fraction <= 2 * ideal
        assert mod_plan.moved_fraction > 2 * ideal


class TestWeightedDrainInvariant:
    """The PR-5 acceptance invariant, on a heterogeneous fleet.

    For every registered algorithm (weight-native weighted-rendezvous,
    the other nine through the virtual-multiplicity wrapper): on a
    fleet with weights {1, 2, 4}, gracefully draining the heaviest
    server through the ControlLoop

    * moves exactly the keys the leave epoch remaps (plan size ==
      epoch remap count, bit-exact),
    * never misses a read mid-drain and leaves every key readable at
      ``route(key)`` afterwards,
    * leaves zero keys on the drained server,
    * and leaves post-drain ownership tracking the remaining weights
      within chi-squared tolerance.
    """

    N_KEYS = 1_500
    WEIGHTS = {"w1": 1.0, "w2": 2.0, "w4": 4.0}

    #: 99.9% chi-squared critical value at dof=1 (two survivors),
    #: slackened for vnode-granular placements.
    CHI2_LIMIT = 10.83 * 8

    #: Virtual members per unit weight for the wrapper path: ring
    #: algorithms need fine granularity for ownership to track weights.
    VIRTUAL_BASE = 32

    #: Sized for 7 weight-units x 32 = 224 virtual members.
    _CONFIGS = {
        "hd": {"dim": 1_024, "codebook_size": 512},
        "maglev": {"table_size": 1_021},
    }

    @pytest.mark.parametrize(
        "name", sorted(set(registered_algorithms()) - {"weighted"})
    )
    def test_drain_heaviest_moves_exactly_its_keys(self, name):
        from repro.analysis import chi_squared_statistic
        from repro.control import ControlLoop, FleetState, ServerSpec
        from repro.hashing import weighted_table
        from repro.service import Router
        from repro.store import DataPlane

        table = weighted_table(
            name,
            seed=13,
            virtual_base=self.VIRTUAL_BASE,
            **self._CONFIGS.get(name, {})
        )
        fleet = FleetState(
            ServerSpec(server_id, weight=weight)
            for server_id, weight in self.WEIGHTS.items()
        )
        router = Router(table)
        plane = DataPlane(router)
        loop = ControlLoop(router, plane, fleet, max_keys_per_tick=400)
        loop.bootstrap()
        keys = np.arange(self.N_KEYS, dtype=np.int64)
        plane.put_many(keys, ["value-{}".format(key) for key in keys])

        drained_keys = len(plane.store("w4"))
        misses = []

        def on_tick(status):
            sample = np.random.default_rng(7).choice(keys, 250)
            __, found = plane.get_many(sample)
            misses.append(int(np.sum(~found)))

        report = loop.drain("w4", on_tick=on_tick)

        # Plan size == epoch remap count, bit-exact.
        assert report.record.probes_moved == report.plan.total_keys
        # The drained server's keys all had to move; minimally
        # disruptive algorithms move nothing else (the wrapper keeps
        # their property), so the plan is at least the drained load.
        assert report.plan.total_keys >= drained_keys
        # Zero read misses at every sampled point mid-drain.
        assert sum(misses) == 0 and misses
        # Zero keys remain on the drained server, which is gone.
        assert "w4" not in router.table
        assert "w4" not in plane.stores
        # Every key reads back at its routed owner.
        __, found = plane.get_many(keys)
        assert bool(np.all(found))
        owners = router.route_batch(keys)
        for key, owner in zip(keys[:200].tolist(), owners[:200]):
            assert plane.store(owner).get(key) == "value-{}".format(key)
        # Post-drain ownership tracks the surviving weights {1, 2}.
        counts = {"w1": 0, "w2": 0}
        for owner in owners:
            counts[owner] += 1
        expected = np.asarray([self.N_KEYS / 3.0, 2.0 * self.N_KEYS / 3.0])
        statistic = chi_squared_statistic(
            np.asarray([counts["w1"], counts["w2"]]), expected
        )
        assert statistic < self.CHI2_LIMIT, (name, counts)

    def test_minimally_disruptive_drain_is_minimal(self):
        """For rendezvous (wrapped), the drain plan is ~exactly the
        drained server's keys -- no collateral movement."""
        from repro.control import ControlLoop, FleetState, ServerSpec
        from repro.hashing import weighted_table
        from repro.service import Router
        from repro.store import DataPlane

        fleet = FleetState(
            ServerSpec(server_id, weight=weight)
            for server_id, weight in self.WEIGHTS.items()
        )
        router = Router(weighted_table("rendezvous", seed=13))
        plane = DataPlane(router)
        loop = ControlLoop(router, plane, fleet)
        loop.bootstrap()
        keys = np.arange(self.N_KEYS, dtype=np.int64)
        plane.put_many(keys, keys)
        drained_keys = len(plane.store("w4"))
        report = loop.drain("w4")
        assert report.plan.total_keys == drained_keys
