"""The public API surface: everything advertised in ``__all__`` resolves."""

import importlib

import pytest

import repro

MODULES = [
    "repro",
    "repro.analysis",
    "repro.control",
    "repro.costmodel",
    "repro.emulator",
    "repro.errors",
    "repro.experiments",
    "repro.hashfn",
    "repro.hashing",
    "repro.hashing.registry",
    "repro.hdc",
    "repro.memory",
    "repro.perf",
    "repro.service",
    "repro.service.migration",
    "repro.store",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_all_resolves(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__")
    for name in module.__all__:
        assert hasattr(module, name), "{}.{} missing".format(module_name, name)


def test_version():
    assert repro.__version__ == "1.0.0"


def test_quickstart_docstring_example():
    table = repro.HDHashTable(seed=7, dim=4_096, codebook_size=512)
    for name in ("alpha", "beta", "gamma"):
        table.join(name)
    assert table.lookup("user-42") in {"alpha", "beta", "gamma"}


def test_paper_algorithm_registry():
    assert set(repro.PAPER_ALGORITHMS) == {
        "modular",
        "consistent",
        "rendezvous",
        "hd",
    }
    for cls in repro.PAPER_ALGORITHMS.values():
        table = cls(seed=0) if cls is not repro.HDHashTable else cls(
            seed=0, dim=512, codebook_size=64
        )
        table.join("x")
        assert table.lookup("y") == "x"
