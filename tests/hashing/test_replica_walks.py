"""Batch==scalar exactness for the vectorized replica walks.

PR 7 replaced the per-key Python successor walks behind
``route_replicas`` (consistent, bounded, multiprobe, modular, maglev)
and the scalar-wrapping weighted path with array kernels
(:meth:`~repro.hashing.base.DynamicHashTable._walk_distinct_batch` and
the fused weighted group-max).  The general replica contract is covered
by ``test_replica_property``; this module stresses the walk-specific
hazards with denser sampling:

* batch == scalar bit-exactly at ``k`` in {1, 2, 5} across server
  counts where the walk's masked-advance loop takes very different
  numbers of steps (2 servers forces ``_complete_replicas`` fills;
  33 servers makes virtual-node rings long);
* ``k == server_count`` -- every walk must terminate with a full
  permutation even when nearly every candidate is a duplicate.
"""

import numpy as np
import pytest

from repro.hashing import make_table

WALK_ALGORITHMS = [
    "consistent",
    "bounded-consistent",
    "multiprobe-consistent",
    "modular",
    "maglev",
    "weighted",
    "weighted-rendezvous",
]
CONFIGS = {"maglev": {"table_size": 131}}


def build(name, n_servers, seed):
    table = make_table(name, seed=seed, **CONFIGS.get(name, {}))
    for index in range(n_servers):
        table.join("srv-{:03d}".format(index))
    return table


@pytest.fixture(scope="module")
def words():
    return np.random.default_rng(29).integers(
        0, 2**64, 400, dtype=np.uint64
    )


@pytest.mark.parametrize("name", WALK_ALGORITHMS)
@pytest.mark.parametrize("k", [1, 2, 5])
@pytest.mark.parametrize("n_servers", [5, 7, 16, 33])
def test_batch_matches_scalar(name, k, n_servers, words):
    if k > n_servers:
        pytest.skip("k exceeds pool")
    table = build(name, n_servers, seed=4)
    batch = table.route_replicas_batch(words, k)
    assert batch.shape == (words.size, k)
    for index, word in enumerate(words.tolist()):
        scalar = table.route_word_replicas(word, k)
        assert scalar.tolist() == batch[index].tolist(), (name, k, index)


@pytest.mark.parametrize("name", WALK_ALGORITHMS)
@pytest.mark.parametrize("n_servers", [2, 3, 6])
def test_full_permutation_terminates(name, n_servers, words):
    table = build(name, n_servers, seed=8)
    k = n_servers
    batch = table.route_replicas_batch(words[:100], k)
    for index, row in enumerate(batch.tolist()):
        assert sorted(row) == list(range(n_servers)), (name, index)
        scalar = table.route_word_replicas(int(words[index]), k)
        assert scalar.tolist() == row
