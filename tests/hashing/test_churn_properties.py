"""Property tests: invariants that must hold under arbitrary churn.

Hypothesis drives random join/leave/lookup schedules against each
algorithm and checks the invariants the experiments rely on: replicas
stay bit-identical, lookups always land on live members, and
re-building from scratch matches incremental mutation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    ConsistentHashTable,
    HDHashTable,
    JumpHashTable,
    ModularHashTable,
    RendezvousHashTable,
)

_FACTORIES = {
    "modular": lambda: ModularHashTable(seed=9),
    "consistent": lambda: ConsistentHashTable(seed=9),
    "rendezvous": lambda: RendezvousHashTable(seed=9),
    "hd": lambda: HDHashTable(seed=9, dim=512, codebook_size=128),
    "jump": lambda: JumpHashTable(seed=9),
}

# A churn schedule: each element joins (True) or leaves (False) a server
# index from a bounded universe, skipping no-ops.
churn_schedules = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=15)),
    min_size=1,
    max_size=24,
)


def _apply(table, schedule):
    """Apply a schedule, skipping invalid operations; return live set."""
    live = set()
    for join, server in schedule:
        if join and server not in live:
            table.join(server)
            live.add(server)
        elif not join and server in live and len(live) > 1:
            table.leave(server)
            live.remove(server)
    return live


@pytest.mark.parametrize("name", sorted(_FACTORIES))
class TestChurnInvariants:
    @settings(max_examples=15, deadline=None)
    @given(schedule=churn_schedules)
    def test_lookup_always_hits_live_member(self, name, schedule):
        table = _FACTORIES[name]()
        live = _apply(table, schedule)
        if not live:
            return
        assert set(table.server_ids) == live
        words = np.random.default_rng(1).integers(0, 2 ** 64, 64, dtype=np.uint64)
        slots = table.route_batch(words)
        chosen = {table.server_ids[slot] for slot in slots.tolist()}
        assert chosen <= live

    @settings(max_examples=15, deadline=None)
    @given(schedule=churn_schedules)
    def test_replicas_bit_identical_under_churn(self, name, schedule):
        first = _FACTORIES[name]()
        second = _FACTORIES[name]()
        live_a = _apply(first, schedule)
        live_b = _apply(second, schedule)
        assert live_a == live_b
        if not live_a:
            return
        words = np.random.default_rng(2).integers(0, 2 ** 64, 64, dtype=np.uint64)
        assert np.array_equal(
            first.route_batch(words), second.route_batch(words)
        )

    @settings(max_examples=10, deadline=None)
    @given(schedule=churn_schedules)
    def test_state_independent_algorithms_forget_history(self, name, schedule):
        """For history-independent algorithms (all but jump's swap-remove
        bucket layout), churning down to a final membership must route
        like building that membership directly in slot-sorted order."""
        if name == "jump":
            pytest.skip("jump's bucket layout is deliberately historical")
        table = _FACTORIES[name]()
        live = _apply(table, schedule)
        if not live:
            return
        words = np.random.default_rng(3).integers(0, 2 ** 64, 64, dtype=np.uint64)
        ids = np.asarray(table.server_ids, dtype=object)
        churned = ids[table.route_batch(words)]

        fresh = _FACTORIES[name]()
        for server in table.server_ids:  # same final membership
            fresh.join(server)
        fresh_ids = np.asarray(fresh.server_ids, dtype=object)
        direct = fresh_ids[fresh.route_batch(words)]
        assert np.array_equal(churned, direct)