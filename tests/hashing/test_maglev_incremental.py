"""Bit-exactness of Maglev's incremental churn path.

Membership events (:meth:`join` / :meth:`leave`) only update cached
per-server permutation state and mark the lookup table stale; the table
is refilled lazily by the next route.  These properties pin the whole
scheme to the sequential NSDI fill:

* after ANY random join/leave/route interleaving, the materialized
  table is bit-identical to :func:`~repro.hashing.maglev._fill_reference`
  run from scratch over the cached offsets/skips;
* it is also bit-identical to the table of a FRESH instance joined with
  the same servers in the surviving slot order -- the incremental path
  can never drift from a from-scratch build;
* snapshot round-trips preserve the table verbatim.

The random sweep deliberately crosses ``_RACE_COUNT_CUTOVER`` so both
bulk-fill strategies (scalar race from scratch, vectorized rounds with
endgame race) are exercised, and runs enough sequences (200+) that the
round-phase commit/retry logic sees duplicate-heavy states.
"""

import numpy as np
import pytest

from repro.hashing import MaglevHashTable
from repro.hashing.maglev import _RACE_COUNT_CUTOVER, _fill_reference


def materialize(table):
    return table._materialized().copy()


def reference_table(table):
    """From-scratch sequential fill over the table's cached state."""
    return _fill_reference(
        table._offsets, table._skips, table.table_size
    )


def fresh_rebuild(table, seed):
    """A new instance joined with the same servers, in slot order."""
    fresh = MaglevHashTable(seed=seed, table_size=table.table_size)
    for server_id in table.server_ids:
        fresh.join(server_id)
    return materialize(fresh)


class TestIncrementalMatchesRebuild:
    @pytest.mark.parametrize("seed", range(200))
    def test_random_membership_sequences(self, seed):
        rng = np.random.default_rng(seed)
        size = int(rng.choice([67, 131, 251]))
        table = MaglevHashTable(seed=seed, table_size=size)
        joined = 0
        for step in range(int(rng.integers(3, 12))):
            if table.server_count == 0 or (
                table.server_count < 40 and rng.random() < 0.65
            ):
                table.join("srv-{:04d}-{:04d}".format(seed, joined))
                joined += 1
            else:
                victim = str(
                    rng.choice(np.asarray(table.server_ids, dtype=object))
                )
                table.leave(victim)
            # Occasionally route mid-sequence so materialization happens
            # at arbitrary points of the membership history, not only at
            # the end.
            if table.server_count and rng.random() < 0.4:
                table.route_word(
                    int(rng.integers(0, 2**64, dtype=np.uint64))
                )
        if table.server_count == 0:
            table.join("srv-{:04d}-last".format(seed))
        got = materialize(table)
        assert np.array_equal(got, reference_table(table))
        assert np.array_equal(got, fresh_rebuild(table, seed))

    @pytest.mark.parametrize("count", [1, 2, 31, 32, 33, 40])
    def test_race_cutover_boundary(self, count):
        # Counts straddling ``_RACE_COUNT_CUTOVER`` (currently 32) must
        # agree with the sequential oracle under both fill strategies;
        # this guard keeps the boundary cases honest if the cutover moves.
        assert 31 < _RACE_COUNT_CUTOVER <= 40
        table = MaglevHashTable(seed=17, table_size=131)
        for index in range(count):
            table.join("srv-{:04d}".format(index))
        assert np.array_equal(materialize(table), reference_table(table))

    def test_leave_then_rejoin_converges(self):
        table = MaglevHashTable(seed=5, table_size=131)
        for index in range(8):
            table.join("srv-{:04d}".format(index))
        before = materialize(table)
        table.leave("srv-0003")
        table.join("srv-0003")
        # Maglev placement depends only on the (offset, skip) pairs in
        # slot order; rejoining moves the server to the last slot, so
        # the table matches a fresh build in that order, not ``before``.
        assert np.array_equal(materialize(table), reference_table(table))
        assert before.shape == materialize(table).shape

    def test_snapshot_roundtrip_preserves_table(self):
        table = MaglevHashTable(seed=9, table_size=131)
        for index in range(13):
            table.join("srv-{:04d}".format(index))
        snapshot = table.state_dict()
        restored = MaglevHashTable.from_state(snapshot)
        assert np.array_equal(materialize(restored), materialize(table))
        # ...and the restored instance keeps filling incrementally.
        restored.join("srv-after-restore")
        assert np.array_equal(
            materialize(restored), reference_table(restored)
        )
