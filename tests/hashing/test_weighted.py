"""Weighted ownership: fractions track spec weights, wrapper contracts.

The chi-squared machinery (``repro.analysis``) judges whether routed
load matches the *weight-proportional* expectation -- the heterogeneous
generalisation of the paper's Figure-6 uniformity test.  Weighted
rendezvous realises weights exactly (each key is independently won with
probability ``w_i / W``), so its statistic follows the chi-squared null
tightly; the virtual-multiplicity fallback quantizes weights into
``virtual_base`` members each, which adds placement granularity, so its
tolerance carries a slack factor.
"""

import numpy as np
import pytest

from repro.analysis import chi_squared_statistic, summarize_loads
from repro.errors import DuplicateServerError, WeightError
from repro.hashing import (
    VirtualWeightTable,
    make_table,
    weighted_table,
)
from repro.service import MembershipUpdate, Router

#: 99.9% chi-squared critical values by degrees of freedom.
_CHI2_999 = {1: 10.83, 2: 13.82, 3: 16.27, 4: 18.47, 5: 20.52, 6: 22.46}

#: Slack multiplier for vnode-granular placements (the fallback path).
_VNODE_SLACK = 6.0

_WEIGHTS = {"small": 1.0, "medium": 2.0, "large": 4.0}


def _weighted_counts(table, n_keys, seed=0):
    rng = np.random.default_rng(seed)
    words = rng.integers(0, 2**64, n_keys, dtype=np.uint64)
    owners = table.lookup_words(words)
    ids = list(table.server_ids)
    index = {server_id: slot for slot, server_id in enumerate(ids)}
    counts = np.zeros(len(ids), dtype=np.int64)
    for owner in owners:
        counts[index[owner]] += 1
    return ids, counts


def _assert_weighted_fit(table, weights, n_keys, slack, seed=0):
    ids, counts = _weighted_counts(table, n_keys, seed=seed)
    total_weight = sum(weights[server_id] for server_id in ids)
    expected = np.asarray(
        [n_keys * weights[server_id] / total_weight for server_id in ids]
    )
    statistic = chi_squared_statistic(counts, expected)
    critical = _CHI2_999[len(ids) - 1] * slack
    assert statistic < critical, (
        "ownership does not track weights: chi2 {:.1f} >= {:.1f} "
        "(counts {}, expected {})".format(
            statistic, critical, counts.tolist(), expected.tolist()
        )
    )
    # The weight-corrected load vector is ~uniform: dividing each
    # count by its weight should leave no heavy outlier.
    corrected = counts / np.asarray([weights[s] for s in ids])
    summary = summarize_loads(corrected.astype(np.int64))
    assert summary.max_to_mean < 1.0 + 0.5 * slack / 6.0


class TestWeightedRendezvousOwnership:
    def test_ownership_tracks_weights_across_epochs(self):
        router = Router(make_table("weighted-rendezvous", seed=11))
        weights = dict(_WEIGHTS)
        router.sync([])  # no-op on empty targets
        update = MembershipUpdate(
            joins=tuple(weights), weights=tuple(weights.items())
        )
        router.apply(update)
        _assert_weighted_fit(router.table, weights, 12_000, slack=1.0)

        # Grow epoch: admit another heavy server, weights still hold.
        weights["huge"] = 8.0
        router.join("huge", weight=8.0)
        _assert_weighted_fit(router.table, weights, 12_000, slack=1.0)

        # Shrink epoch: retire the heaviest, remainder re-normalises.
        del weights["huge"]
        router.leave("huge")
        _assert_weighted_fit(router.table, weights, 12_000, slack=1.0)


class TestVirtualMultiplicityOwnership:
    @pytest.mark.parametrize("algorithm", ["rendezvous", "modular", "jump"])
    def test_fallback_ownership_tracks_weights(self, algorithm):
        table = weighted_table(algorithm, seed=7, virtual_base=32)
        assert isinstance(table, VirtualWeightTable)
        for server_id, weight in _WEIGHTS.items():
            table.join(server_id, weight=weight)
        _assert_weighted_fit(table, _WEIGHTS, 12_000, slack=_VNODE_SLACK)

    def test_fallback_across_grow_shrink_epochs(self):
        router = Router(weighted_table("modular", seed=3, virtual_base=32))
        weights = dict(_WEIGHTS)
        router.sync([])
        router.apply(
            MembershipUpdate(
                joins=tuple(weights), weights=tuple(weights.items())
            )
        )
        _assert_weighted_fit(
            router.table, weights, 12_000, slack=_VNODE_SLACK
        )
        weights["huge"] = 8.0
        router.join("huge", weight=8.0)
        _assert_weighted_fit(
            router.table, weights, 12_000, slack=_VNODE_SLACK
        )
        del weights["huge"]
        router.leave("huge")
        _assert_weighted_fit(
            router.table, weights, 12_000, slack=_VNODE_SLACK
        )


class TestVirtualWeightContract:
    def test_weight_native_algorithms_construct_directly(self):
        table = weighted_table("weighted-rendezvous", seed=1)
        assert table.name == "weighted-rendezvous"
        assert not isinstance(table, VirtualWeightTable)

    def test_multiplicity_scales_with_weight(self):
        table = weighted_table("rendezvous", seed=1, virtual_base=8)
        table.join("a", weight=1.0)
        table.join("b", weight=2.5)
        assert table.inner.server_count == 8 + 20
        table.leave("b")
        assert table.inner.server_count == 8

    def test_bad_weights_rejected(self):
        table = weighted_table("rendezvous", seed=1)
        with pytest.raises(ValueError):
            table.join("a", weight=0.0)
        table.join("a")
        with pytest.raises(DuplicateServerError):
            table.join("a", weight=2.0)
        # A rejected duplicate must not disturb the live weight.
        assert table.weight_of("a") == 1.0
        assert table.inner.server_count == table.multiplicity(1.0)

    def test_no_self_nesting(self):
        with pytest.raises(ValueError):
            make_table("weighted", algorithm="weighted")

    def test_batch_matches_scalar_and_replicas_distinct(self):
        table = weighted_table("consistent", seed=5, replicas=4)
        for server_id, weight in _WEIGHTS.items():
            table.join(server_id, weight=weight)
        words = np.random.default_rng(2).integers(
            0, 2**64, 500, dtype=np.uint64
        )
        batch = table.route_batch(words)
        scalar = np.asarray(
            [table.route_word(int(word)) for word in words]
        )
        assert np.array_equal(batch, scalar)
        replicas = table.route_replicas_batch(words, 3)
        assert np.array_equal(replicas[:, 0], batch)
        for row in range(replicas.shape[0]):
            assert len(set(replicas[row].tolist())) == 3
            assert np.array_equal(
                replicas[row], table.route_word_replicas(int(words[row]), 3)
            )

    def test_snapshot_roundtrip_preserves_weights_and_routing(self):
        from repro.hashing.base import DynamicHashTable
        from repro.service.snapshot import dumps_state, loads_state

        table = weighted_table("rendezvous", seed=5)
        for server_id, weight in _WEIGHTS.items():
            table.join(server_id, weight=weight)
        words = np.random.default_rng(3).integers(
            0, 2**64, 2_000, dtype=np.uint64
        )
        text = dumps_state(table.state_dict())
        restored = DynamicHashTable.from_state(loads_state(text))
        assert restored.weights == table.weights
        assert restored.virtual_base == table.virtual_base
        assert np.array_equal(
            restored.lookup_words(words), table.lookup_words(words)
        )


class TestRouterWeightThreading:
    def test_weight_blind_table_rejects_weights(self):
        router = Router(make_table("modular", seed=1))
        with pytest.raises(WeightError):
            router.apply(
                MembershipUpdate(joins=("a",), weights=(("a", 2.0),))
            )
        # Nothing mutated, no epoch consumed.
        assert router.epoch == 0
        assert router.server_count == 0

    def test_unit_weight_allowed_on_weight_blind_table(self):
        router = Router(make_table("modular", seed=1))
        router.apply(
            MembershipUpdate(joins=("a",), weights=(("a", 1.0),))
        )
        assert router.server_ids == ("a",)

    def test_spec_objects_flow_through_update(self):
        from repro.control import ServerSpec

        update = MembershipUpdate(
            joins=(ServerSpec("a", weight=3.0), "b"),
            leaves=(ServerSpec("c", weight=2.0),),
        )
        assert update.joins == ("a", "b")
        assert update.leaves == ("c",)
        assert update.join_weights == {"a": 3.0}

    def test_weights_must_name_joining_servers(self):
        with pytest.raises(ValueError):
            MembershipUpdate(joins=("a",), weights=(("b", 2.0),))
        with pytest.raises(ValueError):
            MembershipUpdate(joins=("a",), weights=(("a", -1.0),))
