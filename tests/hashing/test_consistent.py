"""Semantic tests for consistent hashing."""

import numpy as np
import pytest

from repro.hashing import ConsistentHashTable

from ..conftest import populate


def _naive_successor(positions, slots, key):
    """Reference successor scan: first position >= key, else wrap to the
    globally smallest position."""
    best_index = None
    for index, position in enumerate(positions):
        if position >= key:
            if best_index is None or positions[index] < positions[best_index]:
                best_index = index
    if best_index is None:
        best_index = int(np.argmin(positions))
    return slots[best_index]


class TestSuccessorSemantics:
    def test_matches_naive_scan(self, request_words):
        table = populate(ConsistentHashTable(seed=2), 16)
        positions = table._ring_positions.tolist()
        slots = table._ring_slots.tolist()
        for word in request_words[:300]:
            key = int(word) >> 32
            assert table.route_word(int(word)) == _naive_successor(
                positions, slots, key
            )

    def test_wraparound(self):
        table = ConsistentHashTable(seed=2)
        table.join("only")
        # Any key beyond the single position wraps to it.
        beyond = (int(table._ring_positions[0]) + 1) << 32
        assert table.route_word(beyond) == 0

    def test_search_backends_agree_pristine(self, request_words):
        count = populate(ConsistentHashTable(seed=2, search="count"), 20)
        bisect = populate(ConsistentHashTable(seed=2, search="bisect"), 20)
        assert np.array_equal(
            count.route_batch(request_words), bisect.route_batch(request_words)
        )

    def test_invalid_search_backend(self):
        with pytest.raises(ValueError):
            ConsistentHashTable(search="interpolate")


class TestRingMaintenance:
    def test_ring_sorted_after_churn(self):
        table = populate(ConsistentHashTable(seed=3), 32)
        table.leave(5)
        table.join("new")
        positions = table._ring_positions
        assert np.all(positions[:-1] <= positions[1:])

    def test_ring_size_tracks_replicas(self):
        table = populate(ConsistentHashTable(seed=3, replicas=5), 8)
        assert table.ring_size == 40

    def test_invalid_replicas(self):
        with pytest.raises(ValueError):
            ConsistentHashTable(replicas=0)

    def test_leave_removes_all_replicas(self):
        table = populate(ConsistentHashTable(seed=3, replicas=4), 6)
        table.leave(2)
        assert table.ring_size == 20
        assert set(table._ring_slots.tolist()) == set(range(5))


class TestMinimalDisruption:
    def test_join_only_moves_keys_to_new_server(self, request_words):
        table = populate(ConsistentHashTable(seed=4), 16)
        ids = np.asarray(table.server_ids, dtype=object)
        before = ids[table.route_batch(request_words)]
        table.join("newcomer")
        ids_after = np.asarray(table.server_ids, dtype=object)
        after = ids_after[table.route_batch(request_words)]
        moved = before != after
        assert np.all(after[moved] == "newcomer")

    def test_leave_only_moves_leavers_keys(self, request_words):
        table = populate(ConsistentHashTable(seed=4), 16)
        ids = np.asarray(table.server_ids, dtype=object)
        before = ids[table.route_batch(request_words)]
        table.leave(9)
        ids_after = np.asarray(table.server_ids, dtype=object)
        after = ids_after[table.route_batch(request_words)]
        moved = before != after
        assert np.all(before[moved] == 9)

    def test_remap_fraction_near_ideal(self, request_words):
        table = populate(ConsistentHashTable(seed=4), 64)
        before = table.route_batch(request_words).copy()
        table.join("newcomer")
        after = table.route_batch(request_words)
        moved = np.mean(before != after)
        # One in 65 expected; allow generous slack for arc-length variance.
        assert moved < 0.15


class TestReplicasImproveUniformity:
    def test_more_replicas_lower_chi2(self):
        from repro.analysis import uniformity_chi2

        words = np.random.default_rng(5).integers(
            0, 2 ** 64, 50_000, dtype=np.uint64
        )
        single = populate(ConsistentHashTable(seed=5, replicas=1), 32)
        many = populate(ConsistentHashTable(seed=5, replicas=32), 32)
        chi_single = uniformity_chi2(single.route_batch(words), 32)
        chi_many = uniformity_chi2(many.route_batch(words), 32)
        assert chi_many < chi_single


class TestPositionDtype:
    def test_float32_matches_fixed32_on_pristine_state(self, request_words):
        fixed = populate(ConsistentHashTable(seed=7), 24)
        floats = populate(
            ConsistentHashTable(seed=7, position_dtype="float32"), 24
        )
        agree = np.mean(
            fixed.route_batch(request_words) == floats.route_batch(request_words)
        )
        # float32 quantises the circle to 24 mantissa bits; boundary keys
        # may straddle a position, everything else must agree.
        assert agree > 0.999

    def test_float32_positions_in_unit_interval(self):
        table = populate(
            ConsistentHashTable(seed=7, position_dtype="float32"), 16
        )
        positions = table._ring_positions
        assert positions.dtype == np.float32
        assert float(positions.min()) >= 0.0
        assert float(positions.max()) < 1.0

    def test_float32_more_fragile_than_fixed32(self, request_words):
        from repro.memory import MismatchCampaign, SingleBitFlips

        outcomes = {}
        for dtype in ("fixed32", "float32"):
            table = populate(
                ConsistentHashTable(seed=7, position_dtype=dtype), 64
            )
            campaign = MismatchCampaign(table, request_words)
            outcomes[dtype] = campaign.run(
                SingleBitFlips(10),
                trials=6,
                rng=np.random.default_rng(17),
            ).mean_mismatch
        assert outcomes["float32"] > outcomes["fixed32"]

    def test_invalid_dtype(self):
        with pytest.raises(ValueError):
            ConsistentHashTable(position_dtype="float64")
