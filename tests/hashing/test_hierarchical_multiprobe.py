"""Tests for hierarchical composition and multi-probe consistent hashing."""

import numpy as np
import pytest

from repro.errors import EmptyTableError
from repro.hashing import (
    ConsistentHashTable,
    HDHashTable,
    HierarchicalHashTable,
    MultiProbeConsistentHashTable,
)

from ..conftest import populate


def _hierarchy(n_groups=4, seed=2):
    return HierarchicalHashTable(
        outer_factory=lambda: ConsistentHashTable(seed=seed),
        inner_factory=lambda: HDHashTable(
            seed=seed, dim=1_024, codebook_size=128
        ),
        n_groups=n_groups,
        seed=seed,
    )


class TestHierarchicalStructure:
    def test_groups_created(self):
        table = _hierarchy(n_groups=4)
        assert table.n_groups == 4
        assert table.outer.server_count == 4

    def test_join_assigns_to_group(self):
        table = populate(_hierarchy(), 16)
        for server in table.server_ids:
            group = table.group_of(server)
            assert server in table.inner(group)

    def test_groups_partition_servers(self):
        table = populate(_hierarchy(), 20)
        total = sum(
            table.inner(group).server_count for group in range(table.n_groups)
        )
        assert total == 20

    def test_leave_removes_from_group(self):
        table = populate(_hierarchy(), 12)
        group = table.group_of(5)
        before = table.inner(group).server_count
        table.leave(5)
        assert table.inner(group).server_count == before - 1

    def test_requires_empty_factories(self):
        def nonempty():
            inner = ConsistentHashTable(seed=1)
            inner.join("preexisting")
            return inner

        with pytest.raises(ValueError):
            HierarchicalHashTable(nonempty, nonempty, n_groups=2)

    def test_requires_groups(self):
        with pytest.raises(ValueError):
            HierarchicalHashTable(
                lambda: ConsistentHashTable(seed=1),
                lambda: ConsistentHashTable(seed=1),
                n_groups=0,
            )


class TestHierarchicalRouting:
    def test_lookup_returns_member(self):
        table = populate(_hierarchy(), 16)
        for key in ("a", "b", 99):
            assert table.lookup(key) in table.server_ids

    def test_routes_to_outer_selected_group(self):
        table = populate(_hierarchy(), 16)
        for key in range(50):
            word = table.family.word(key)
            group_slot = table.outer.route_word(word)
            # With every group populated, no probing happens.
            assigned = table.lookup(key)
            assert table.group_of(assigned) == group_slot

    def test_probes_past_empty_group(self):
        table = _hierarchy(n_groups=4)
        # Put all servers into whatever groups they hash to, then empty
        # one group manually.
        populate(table, 12)
        victim_group = table.group_of(0)
        for server in list(table.server_ids):
            if table.group_of(server) == victim_group:
                table.leave(server)
        assert table.inner(victim_group).server_count == 0
        for key in range(100):
            assert table.lookup(key) in table.server_ids

    def test_empty_everything_raises(self):
        table = _hierarchy()
        with pytest.raises(EmptyTableError):
            table.lookup("x")

    def test_replica_determinism(self, request_words):
        a = populate(_hierarchy(), 24)
        b = populate(_hierarchy(), 24)
        ids_a = [a.lookup(int(w)) for w in request_words[:100]]
        ids_b = [b.lookup(int(w)) for w in request_words[:100]]
        assert ids_a == ids_b

    def test_leave_blast_radius_is_one_group(self, request_words):
        table = populate(_hierarchy(n_groups=8), 64)
        before = {
            int(word): table.lookup(int(word)) for word in request_words[:500]
        }
        victim = 7
        victim_group = table.group_of(victim)
        table.leave(victim)
        for word, server in before.items():
            after = table.lookup(word)
            if after != server:
                # every moved key stays within the victim's group
                assert table.group_of(after) == victim_group
                assert server == victim


class TestHierarchicalMemory:
    def test_regions_are_namespaced(self):
        table = populate(_hierarchy(), 8)
        names = [region.name for region in table.memory_regions()]
        assert any(name.startswith("outer/") for name in names)
        assert any(name.startswith("group") for name in names)
        assert len(names) == len(set(names))


class TestMultiProbe:
    def test_route_in_pool(self, request_words):
        table = populate(MultiProbeConsistentHashTable(seed=3), 16)
        slots = table.route_batch(request_words)
        assert slots.min() >= 0 and slots.max() < 16

    def test_scalar_matches_batch(self, request_words):
        table = populate(MultiProbeConsistentHashTable(seed=3), 16)
        words = request_words[:200]
        batch = table.route_batch(words)
        scalar = [table.route_word(int(word)) for word in words]
        assert batch.tolist() == scalar

    def test_more_uniform_than_plain_consistent(self):
        from repro.analysis import uniformity_chi2

        words = np.random.default_rng(9).integers(
            0, 2 ** 64, 50_000, dtype=np.uint64
        )
        plain = populate(ConsistentHashTable(seed=4), 32)
        multi = populate(MultiProbeConsistentHashTable(seed=4, probes=21), 32)
        chi_plain = uniformity_chi2(plain.route_batch(words), 32)
        chi_multi = uniformity_chi2(multi.route_batch(words), 32)
        assert chi_multi < chi_plain / 2

    def test_more_probes_more_uniform(self):
        from repro.analysis import uniformity_chi2

        words = np.random.default_rng(10).integers(
            0, 2 ** 64, 40_000, dtype=np.uint64
        )
        few = populate(MultiProbeConsistentHashTable(seed=5, probes=2), 32)
        many = populate(MultiProbeConsistentHashTable(seed=5, probes=32), 32)
        chi_few = uniformity_chi2(few.route_batch(words), 32)
        chi_many = uniformity_chi2(many.route_batch(words), 32)
        assert chi_many < chi_few

    def test_minimal_disruption_on_leave(self, request_words):
        table = populate(MultiProbeConsistentHashTable(seed=6), 16)
        ids = np.asarray(table.server_ids, dtype=object)
        before = ids[table.route_batch(request_words)]
        table.leave(3)
        ids_after = np.asarray(table.server_ids, dtype=object)
        after = ids_after[table.route_batch(request_words)]
        moved = before != after
        assert np.all(before[moved] == 3)

    def test_invalid_probes(self):
        with pytest.raises(ValueError):
            MultiProbeConsistentHashTable(probes=0)
