"""Property tests for the replica protocol, over all ten algorithms.

The contract (see :mod:`repro.hashing.base`):

* the ``k`` replicas of a key are pairwise distinct;
* ``lookup_replicas(key, 1)[0] == lookup(key)`` -- the replica set
  degrades to the plain lookup;
* batch and scalar replica routing agree bit-exactly;
* ``k`` outside ``[1, server_count]`` raises a clear
  :class:`~repro.errors.ReplicaCountError`.
"""

import numpy as np
import pytest

from repro.errors import EmptyTableError, ReplicaCountError
from repro.hashing import make_table, registered_algorithms
from repro.hashing.hd import HDHashTable

LIGHT_CONFIG = {"hd": {"dim": 1_024, "codebook_size": 128}}
N_SERVERS = 10
ALGORITHMS = sorted(registered_algorithms())


def build(name, n_servers=N_SERVERS, seed=3):
    table = make_table(name, seed=seed, **LIGHT_CONFIG.get(name, {}))
    for index in range(n_servers):
        table.join("srv-{:02d}".format(index))
    return table


@pytest.fixture(scope="module")
def words():
    return np.random.default_rng(11).integers(
        0, 2**64, 600, dtype=np.uint64
    )


@pytest.mark.parametrize("name", ALGORITHMS)
@pytest.mark.parametrize("k", [1, 2, 3, N_SERVERS])
class TestReplicaContract:
    def test_replicas_pairwise_distinct(self, name, k, words):
        table = build(name)
        batch = table.route_replicas_batch(words, k)
        assert batch.shape == (words.size, k)
        for row in batch.tolist():
            assert len(set(row)) == k
            assert all(0 <= slot < N_SERVERS for slot in row)

    def test_batch_matches_scalar_bit_exactly(self, name, k, words):
        table = build(name)
        batch = table.route_replicas_batch(words, k)
        for index in range(0, words.size, 23):
            scalar = table.route_word_replicas(int(words[index]), k)
            assert scalar.tolist() == batch[index].tolist()

    def test_first_replica_is_the_route(self, name, k, words):
        table = build(name)
        batch = table.route_replicas_batch(words, k)
        assert np.array_equal(batch[:, 0], table.route_batch(words))


@pytest.mark.parametrize("name", ALGORITHMS)
class TestReplicaLookups:
    def test_top1_equals_lookup(self, name):
        table = build(name)
        for key in ("alpha", 42, b"raw", "user:17"):
            assert table.lookup_replicas(key, 1)[0] == table.lookup(key)

    def test_lookup_replicas_returns_members(self, name):
        table = build(name)
        replicas = table.lookup_replicas("user:1", 3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3
        assert set(replicas) <= set(table.server_ids)

    def test_lookup_replicas_batch_matches_scalar(self, name):
        table = build(name)
        keys = ["key:{}".format(index) for index in range(40)]
        batch = table.lookup_replicas_batch(keys, 3)
        assert batch.shape == (40, 3)
        for index in (0, 13, 39):
            assert tuple(batch[index]) == table.lookup_replicas(
                keys[index], 3
            )

    def test_replica_sets_survive_churn_determinism(self, name, words=None):
        first = build(name)
        second = build(name)
        for table in (first, second):
            table.leave("srv-03")
            table.join("late")
        probe = np.arange(200, dtype=np.uint64)
        assert np.array_equal(
            first.route_replicas_batch(probe, 3),
            second.route_replicas_batch(probe, 3),
        )


@pytest.mark.parametrize("name", ALGORITHMS)
class TestReplicaCountErrors:
    def test_k_above_pool_size_raises_clearly(self, name):
        table = build(name)
        with pytest.raises(ReplicaCountError, match="distinct replicas"):
            table.lookup_replicas("key", N_SERVERS + 1)
        with pytest.raises(ReplicaCountError):
            table.route_replicas_batch(np.arange(4, dtype=np.uint64), 99)

    def test_k_below_one_raises(self, name):
        table = build(name)
        with pytest.raises(ReplicaCountError, match="at least one"):
            table.lookup_replicas("key", 0)

    def test_replica_count_error_is_a_value_error(self, name):
        table = build(name)
        with pytest.raises(ValueError):
            table.lookup_replicas("key", N_SERVERS + 1)

    def test_empty_table_raises_empty_error(self, name):
        table = make_table(name, seed=3, **LIGHT_CONFIG.get(name, {}))
        with pytest.raises(EmptyTableError):
            table.route_replicas_batch(np.arange(4, dtype=np.uint64), 1)


class TestHDKernelDispatch:
    """Acceptance: HD replica batches go through the packed-word top-k
    kernel -- one deduped sweep, no per-key Python loop."""

    def test_one_kernel_call_per_batch_deduped(self, monkeypatch):
        table = build("hd")
        assert isinstance(table, HDHashTable)
        calls = []
        memory = table.item_memory
        wrapped = memory.query_top_k_words

        def counting(query_words, k, **kwargs):
            calls.append(np.atleast_2d(query_words).shape[0])
            return wrapped(query_words, k, **kwargs)

        monkeypatch.setattr(memory, "query_top_k_words", counting)
        words = np.random.default_rng(5).integers(
            0, 2**64, 5_000, dtype=np.uint64
        )
        table.route_replicas_batch(words, 3)
        assert len(calls) == 1  # one kernel sweep for the whole batch
        assert calls[0] <= 128  # deduped onto unique circle positions

    def test_scalar_and_batch_share_tie_breaks(self):
        # Same kernel on both paths: spot-check a word whose circle
        # position collides across many requests.
        table = build("hd")
        word = 1234567
        scalar = table.route_word_replicas(word, 5)
        batch = table.route_replicas_batch(
            np.full(7, word, dtype=np.uint64), 5
        )
        for row in batch:
            assert row.tolist() == scalar.tolist()
