"""Property: every algorithm's batch path is bit-identical to scalar.

``route_batch`` is the vectorized hot path; ``route_word`` is the
scalar deployment path.  They must agree word for word -- across random
batches, duplicated words, empty batches, and membership states reached
through declarative ``sync()`` churn -- or replicas replaying the same
word stream through different paths would diverge.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import make_table, registered_algorithms
from repro.service import Router

#: Constructor overrides keeping expensive tables test-sized.
_CONFIGS = {
    "hd": {"dim": 256, "codebook_size": 64},
    "maglev": {"table_size": 101},
}

_INITIAL = tuple("s{:02d}".format(index) for index in range(7))
#: Post-sync membership: drops four of the originals, adds three.
_SYNCED = ("s01", "s04", "s06", "n00", "n01", "n02")

_TABLE_CACHE = {}


def _tables(name):
    """One pristine and one churned (post-``sync()``) table per algorithm.

    Built once and shared across hypothesis examples -- routing never
    mutates, so reuse is safe and keeps the property fast.
    """
    if name not in _TABLE_CACHE:
        pristine = make_table(name, seed=5, **_CONFIGS.get(name, {}))
        for server_id in _INITIAL:
            pristine.join(server_id)
        churned = make_table(name, seed=5, **_CONFIGS.get(name, {}))
        for server_id in _INITIAL:
            churned.join(server_id)
        Router(churned).sync(_SYNCED)
        _TABLE_CACHE[name] = (pristine, churned)
    return _TABLE_CACHE[name]


def _scalar_loop(table, words):
    """The pre-vectorization reference: one route_word call per word."""
    return np.fromiter(
        (table.route_word(int(word)) for word in words),
        dtype=np.int64,
        count=words.size,
    )


@pytest.mark.parametrize("name", registered_algorithms())
@given(
    words=st.lists(
        st.integers(min_value=0, max_value=2 ** 64 - 1),
        min_size=1,
        max_size=64,
    )
)
def test_batch_matches_scalar_loop(name, words):
    words = np.asarray(words, dtype=np.uint64)
    for table in _tables(name):
        assert np.array_equal(
            table.route_batch(words), _scalar_loop(table, words)
        ), "{} diverged (servers={})".format(name, table.server_count)


@pytest.mark.parametrize("name", registered_algorithms())
def test_duplicate_heavy_batch_matches_scalar_loop(name):
    rng = np.random.default_rng(9)
    distinct = rng.integers(0, 2 ** 64, 5, dtype=np.uint64)
    words = rng.choice(distinct, size=400)
    for table in _tables(name):
        assert np.array_equal(
            table.route_batch(words), _scalar_loop(table, words)
        )


@pytest.mark.parametrize("name", registered_algorithms())
def test_empty_batch_routes_to_empty(name):
    for table in _tables(name):
        out = table.route_batch(np.empty(0, dtype=np.uint64))
        assert out.shape == (0,)
        assert out.dtype == np.int64


@pytest.mark.parametrize("name", registered_algorithms())
def test_sync_actually_churned_membership(name):
    """Guard the fixture: the second table really is a different state."""
    pristine, churned = _tables(name)
    assert set(pristine.server_ids) == set(_INITIAL)
    assert set(churned.server_ids) == set(_SYNCED)
