"""Semantic tests for rendezvous (HRW) hashing."""

import numpy as np
import pytest

from repro.hashing import RendezvousHashTable, WeightedRendezvousHashTable

from ..conftest import populate


class TestArgmaxSemantics:
    def test_matches_naive_argmax(self, request_words):
        table = populate(RendezvousHashTable(seed=6), 12)
        pair = table._pair_family.pair
        for word in request_words[:200]:
            weights = [
                pair(int(table._server_words[slot]), int(word))
                for slot in range(12)
            ]
            assert table.route_word(int(word)) == int(np.argmax(weights))


class TestMinimalDisruption:
    """HRW's disruption bounds are exact, not approximate."""

    def test_leave_remaps_exactly_leavers_keys(self, request_words):
        table = populate(RendezvousHashTable(seed=6), 16)
        ids = np.asarray(table.server_ids, dtype=object)
        before = ids[table.route_batch(request_words)]
        table.leave(4)
        ids_after = np.asarray(table.server_ids, dtype=object)
        after = ids_after[table.route_batch(request_words)]
        moved = before != after
        assert np.all(before[moved] == 4)
        assert np.all(after[~moved] == before[~moved])
        # Every key that was on the leaver moved somewhere.
        assert np.all(after[before == 4] != 4)

    def test_join_steals_only_what_it_wins(self, request_words):
        table = populate(RendezvousHashTable(seed=6), 16)
        ids = np.asarray(table.server_ids, dtype=object)
        before = ids[table.route_batch(request_words)]
        table.join("thief")
        ids_after = np.asarray(table.server_ids, dtype=object)
        after = ids_after[table.route_batch(request_words)]
        moved = before != after
        assert np.all(after[moved] == "thief")

    def test_rejoin_restores_assignment(self, request_words):
        table = populate(RendezvousHashTable(seed=6), 16)
        before = table.route_batch(request_words).copy()
        table.leave(7)
        table.join(7)
        # Slot order changed (7 is now last), so compare by id.
        ids = np.asarray(table.server_ids, dtype=object)
        after_ids = ids[table.route_batch(request_words)]
        original_ids = np.asarray(populate(
            RendezvousHashTable(seed=6), 16
        ).server_ids, dtype=object)[before]
        assert np.array_equal(after_ids, original_ids)


class TestUniformity:
    def test_near_perfect_balance(self):
        words = np.random.default_rng(7).integers(
            0, 2 ** 64, 64_000, dtype=np.uint64
        )
        table = populate(RendezvousHashTable(seed=7), 32)
        counts = np.bincount(table.route_batch(words), minlength=32)
        assert counts.min() > 0.8 * counts.mean()
        assert counts.max() < 1.2 * counts.mean()


class TestWeighted:
    def test_weight_must_be_positive(self):
        table = WeightedRendezvousHashTable(seed=8)
        with pytest.raises(ValueError):
            table.join("a", weight=0.0)

    def test_failed_join_leaves_no_weight_state(self):
        table = WeightedRendezvousHashTable(seed=8)
        table.join("a", weight=1.0)
        with pytest.raises(Exception):
            table.join("a", weight=2.0)  # duplicate
        assert table._weights == {"a": 1.0}

    def test_heavier_servers_take_more_load(self):
        words = np.random.default_rng(9).integers(
            0, 2 ** 64, 40_000, dtype=np.uint64
        )
        table = WeightedRendezvousHashTable(seed=9)
        table.join("light", weight=1.0)
        table.join("heavy", weight=3.0)
        counts = np.bincount(table.route_batch(words), minlength=2)
        ratio = counts[1] / counts[0]
        assert 2.4 < ratio < 3.6  # ~3x with sampling noise

    def test_equal_weights_match_unweighted_balance(self):
        words = np.random.default_rng(10).integers(
            0, 2 ** 64, 30_000, dtype=np.uint64
        )
        table = WeightedRendezvousHashTable(seed=10)
        for index in range(8):
            table.join(index, weight=2.0)
        counts = np.bincount(table.route_batch(words), minlength=8)
        assert counts.max() < 1.25 * counts.mean()

    def test_leave_cleans_weight(self):
        table = WeightedRendezvousHashTable(seed=8)
        table.join("a", weight=1.5)
        table.leave("a")
        assert "a" not in table._weights
        assert table._weight_array.size == 0
