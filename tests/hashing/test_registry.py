"""Tests for the string-keyed algorithm registry."""

import numpy as np
import pytest

from repro.errors import UnknownAlgorithmError
from repro.hashing import (
    ALL_ALGORITHMS,
    PAPER_ALGORITHMS,
    DynamicHashTable,
    HDHashTable,
    HierarchicalHashTable,
    algorithm_entry,
    make_table,
    register_table,
    registered_algorithms,
    table_class,
)
from repro.hashing.registry import TableConfig

#: Demo-scale config overrides so the parametrized tests stay fast.
LIGHT_CONFIG = {"hd": {"dim": 1_024, "codebook_size": 128}}


def build(name, seed=0):
    return make_table(name, seed=seed, **LIGHT_CONFIG.get(name, {}))


class TestRegistryContents:
    def test_all_algorithms_registered(self):
        assert set(registered_algorithms()) == {
            "modular",
            "consistent",
            "rendezvous",
            "hd",
            "jump",
            "maglev",
            "bounded-consistent",
            "weighted-rendezvous",
            "multiprobe-consistent",
            "hierarchical",
            "weighted",
        }

    def test_paper_flags(self):
        assert set(registered_algorithms(paper_only=True)) == {
            "modular",
            "consistent",
            "rendezvous",
            "hd",
        }

    def test_legacy_dicts_derived_from_registry(self):
        for name, cls in PAPER_ALGORITHMS.items():
            assert table_class(name) is cls
        for name, cls in ALL_ALGORITHMS.items():
            assert table_class(name) is cls
        assert "hierarchical" not in ALL_ALGORITHMS  # factory-built

    def test_entries_carry_descriptions(self):
        for name in registered_algorithms():
            assert algorithm_entry(name).description


class TestCapabilityFlags:
    def test_churn_incremental_coverage(self):
        # Derived from the bulk membership kernel overrides: one
        # array-level structural update per membership event.  HD, jump
        # and Maglev mutate per scalar event by design (their per-event
        # work is already O(1)-ish), so they are truthfully unflagged.
        flagged = {
            name
            for name in registered_algorithms()
            if "churn-incremental" in algorithm_entry(name).capabilities
        }
        assert flagged == {
            "modular",
            "consistent",
            "bounded-consistent",
            "multiprobe-consistent",
            "rendezvous",
            "weighted-rendezvous",
            "weighted",
            "hierarchical",
        }

    def test_delta_close_coverage(self):
        # Derived from the delta-scoped score kernels.  Multi-probe
        # *overrides* the kernels it inherits from the ring -- but only
        # to opt out (best-probe placement breaks the one-score-per-key
        # contract), so the flag must not leak through the override.
        flagged = {
            name
            for name in registered_algorithms()
            if "delta-close" in algorithm_entry(name).capabilities
        }
        assert flagged == {
            "hd",
            "consistent",
            "bounded-consistent",
            "rendezvous",
            "weighted-rendezvous",
            "weighted",
        }

    def test_delta_close_flags_match_kernel_behaviour(self):
        # The flag is only a promise that the kernel *exists*; check it
        # against live tables -- flagged algorithms return a score per
        # word (modulo config gates), unflagged ones return None.
        words = np.arange(64, dtype=np.uint64)
        for name in registered_algorithms():
            table = build(name)
            for index in range(4):
                table.join("srv-{}".format(index))
            scores = table._delta_scores(words)
            if "delta-close" not in algorithm_entry(name).capabilities:
                assert scores is None, name
            else:
                assert scores is not None, name
                assert scores.shape == words.shape, name


@pytest.mark.parametrize("name", [
    "modular", "consistent", "rendezvous", "hd", "jump", "maglev",
    "bounded-consistent", "weighted-rendezvous", "multiprobe-consistent",
    "hierarchical",
])
class TestMakeTable:
    def test_constructs_and_routes(self, name):
        table = build(name, seed=1)
        assert isinstance(table, DynamicHashTable)
        assert table.name == name
        for i in range(5):
            table.join(i)
        assert table.lookup("key") in table.server_ids

    def test_name_matches_class(self, name):
        assert isinstance(build(name), table_class(name))


class TestSpecsAndErrors:
    def test_unknown_algorithm(self):
        with pytest.raises(UnknownAlgorithmError):
            make_table("quantum")
        # ... which remains catchable as the builtin ValueError.
        with pytest.raises(ValueError):
            make_table("quantum")

    def test_unknown_config_key_rejected(self):
        with pytest.raises(TypeError, match="modular"):
            make_table("modular", replicas=3)

    def test_mapping_spec(self):
        table = make_table(
            {"algorithm": "consistent", "config": {"replicas": 3}}
        )
        assert table.replicas == 3

    def test_kwargs_override_mapping_spec(self):
        table = make_table(
            {"algorithm": "consistent", "config": {"replicas": 3}},
            replicas=5,
        )
        assert table.replicas == 5

    def test_config_values_reach_constructor(self):
        table = make_table("hd", dim=512, codebook_size=64, batch_size=32)
        assert table.dim == 512
        assert table.codebook_size == 64
        assert table.batch_size == 32

    def test_hierarchical_spec_composition(self):
        table = make_table(
            "hierarchical",
            n_groups=2,
            outer="consistent",
            inner={"algorithm": "hd",
                   "config": {"dim": 512, "codebook_size": 64, "seed": 9}},
        )
        assert isinstance(table, HierarchicalHashTable)
        assert table.n_groups == 2
        assert isinstance(table.inner(0), HDHashTable)
        assert table.inner(0).dim == 512

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_table("modular", config=TableConfig)(
                type("Fake", (DynamicHashTable,), {})
            )

    def test_third_party_registration(self):
        from repro.hashing.registry import _REGISTRY
        from repro.hashing import ModularHashTable

        @register_table("test-custom", config=TableConfig)
        class CustomTable(ModularHashTable):
            name = "test-custom"

        try:
            table = make_table("test-custom", seed=4)
            assert isinstance(table, CustomTable)
        finally:
            del _REGISTRY["test-custom"]


class TestBuilderDeterminism:
    def test_same_seed_same_routing(self, request_words):
        for name in registered_algorithms():
            a = build(name, seed=7)
            b = build(name, seed=7)
            for i in range(6):
                a.join(i)
                b.join(i)
            assert np.array_equal(
                a.route_batch(request_words[:300]),
                b.route_batch(request_words[:300]),
            ), name
