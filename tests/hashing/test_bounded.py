"""Tests for consistent hashing with bounded loads."""

import numpy as np
import pytest

from repro.hashing import BoundedLoadConsistentHashTable, ConsistentHashTable

from ..conftest import populate


class TestConstruction:
    def test_balance_must_exceed_one(self):
        with pytest.raises(ValueError):
            BoundedLoadConsistentHashTable(balance=1.0)

    def test_capacity_formula(self):
        table = populate(BoundedLoadConsistentHashTable(seed=1, balance=1.25), 8)
        assert table.capacity_for(800) == 125  # ceil(1.25 * 800 / 8)


class TestBalancedAssignment:
    def test_capacity_bound_holds(self, request_words):
        table = populate(BoundedLoadConsistentHashTable(seed=1, balance=1.25), 16)
        assignment = table.assign_batch(request_words)
        capacity = table.capacity_for(request_words.size)
        counts = np.bincount(assignment, minlength=16)
        assert counts.max() <= capacity

    def test_all_keys_assigned(self, request_words):
        table = populate(BoundedLoadConsistentHashTable(seed=1), 16)
        assignment = table.assign_batch(request_words)
        assert assignment.shape == request_words.shape
        assert assignment.min() >= 0 and assignment.max() < 16

    def test_loose_balance_matches_plain_consistent(self, request_words):
        """With an effectively unlimited capacity, bounded placement
        degenerates to plain successor placement."""
        bounded = populate(
            BoundedLoadConsistentHashTable(seed=2, balance=1000.0), 12
        )
        plain = populate(ConsistentHashTable(seed=2), 12)
        assert np.array_equal(
            bounded.assign_batch(request_words),
            plain.route_batch(request_words),
        )

    def test_tighter_balance_is_more_uniform(self, request_words):
        from repro.analysis import uniformity_chi2

        tight = populate(BoundedLoadConsistentHashTable(seed=3, balance=1.05), 16)
        loose = populate(BoundedLoadConsistentHashTable(seed=3, balance=4.0), 16)
        chi_tight = uniformity_chi2(tight.assign_batch(request_words), 16)
        chi_loose = uniformity_chi2(loose.assign_batch(request_words), 16)
        assert chi_tight < chi_loose

    def test_single_lookup_falls_back_to_consistent(self, request_words):
        bounded = populate(BoundedLoadConsistentHashTable(seed=4), 12)
        plain = populate(ConsistentHashTable(seed=4), 12)
        for word in request_words[:50]:
            assert bounded.route_word(int(word)) == plain.route_word(int(word))
