"""Semantic tests for modular, jump and Maglev hashing."""

import numpy as np
import pytest

from repro.errors import CapacityError
from repro.hashing import (
    JumpHashTable,
    MaglevHashTable,
    ModularHashTable,
    jump_hash,
)

from ..conftest import populate


class TestModular:
    def test_route_is_word_mod_k(self, request_words):
        table = populate(ModularHashTable(seed=1), 7)
        for word in request_words[:100]:
            assert table.route_word(int(word)) == int(word) % 7

    def test_resize_remaps_almost_everything(self, request_words):
        table = populate(ModularHashTable(seed=1), 16)
        before = table.route_batch(request_words).copy()
        table.join("new")
        after = table.route_batch(request_words)
        assert np.mean(before != after) > 0.8

    def test_corrupted_slot_stays_in_range(self, request_words):
        table = populate(ModularHashTable(seed=1), 5)
        region = table.memory_regions()[0]
        for bit in (1, 40, 63):
            region.flip(bit)
        slots = table.route_batch(request_words)
        assert slots.min() >= 0 and slots.max() < 5


class TestJumpHash:
    def test_reference_behaviour_small_buckets(self):
        # With one bucket every key lands in it.
        for word in (0, 1, 2 ** 63, 2 ** 64 - 1):
            assert jump_hash(word, 1) == 0

    def test_range(self, request_words):
        for word in request_words[:200]:
            assert 0 <= jump_hash(int(word), 10) < 10

    def test_monotone_growth_property(self, request_words):
        """Adding a bucket moves keys only *into* the new bucket -- jump
        hash's defining guarantee."""
        for word in request_words[:300]:
            before = jump_hash(int(word), 9)
            after = jump_hash(int(word), 10)
            assert after == before or after == 9

    def test_uniformity(self):
        words = np.random.default_rng(3).integers(
            0, 2 ** 64, 30_000, dtype=np.uint64
        )
        counts = np.bincount(
            [jump_hash(int(w), 8) for w in words], minlength=8
        )
        assert counts.max() < 1.15 * counts.mean()

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            jump_hash(1, 0)


class TestJumpTable:
    def test_growth_minimal_disruption(self, request_words):
        table = populate(JumpHashTable(seed=2), 12)
        before = table.route_batch(request_words).copy()
        table.join("new")
        after = table.route_batch(request_words)
        moved = before != after
        ids = np.asarray(table.server_ids, dtype=object)
        assert np.all(ids[after[moved]] == "new")
        assert np.mean(moved) < 0.2

    def test_swap_remove_documented_disruption(self, request_words):
        table = populate(JumpHashTable(seed=2), 12)
        ids = np.asarray(table.server_ids, dtype=object)
        before = ids[table.route_batch(request_words)]
        table.leave(4)
        ids_after = np.asarray(table.server_ids, dtype=object)
        after = ids_after[table.route_batch(request_words)]
        moved = before != after
        # Keys move only off the leaver and off the swapped last bucket.
        assert set(np.unique(before[moved]).tolist()) <= {4, 11}


class TestMaglev:
    def test_table_fully_populated(self):
        table = populate(MaglevHashTable(seed=3, table_size=251), 10)
        assert (table._table >= 0).all()
        counts = np.bincount(table._table, minlength=10)
        # Maglev guarantees nearly equal slot shares.
        assert counts.max() - counts.min() <= max(2, 0.05 * counts.mean())

    def test_route_in_range(self, request_words):
        table = populate(MaglevHashTable(seed=3, table_size=251), 10)
        slots = table.route_batch(request_words)
        assert slots.min() >= 0 and slots.max() < 10

    def test_minimal_disruption_on_leave(self, request_words):
        table = populate(MaglevHashTable(seed=3, table_size=251), 10)
        ids = np.asarray(table.server_ids, dtype=object)
        before = ids[table.route_batch(request_words)]
        table.leave(6)
        ids_after = np.asarray(table.server_ids, dtype=object)
        after = ids_after[table.route_batch(request_words)]
        moved = np.mean(before != after)
        # The leaver held ~10%; permutation stability keeps extra churn low.
        assert moved < 0.35

    def test_table_size_must_be_prime(self):
        with pytest.raises(ValueError):
            MaglevHashTable(table_size=100)

    def test_capacity_bounded_by_table(self):
        table = MaglevHashTable(seed=3, table_size=5)
        for index in range(5):
            table.join(index)
        with pytest.raises(CapacityError):
            table.join("extra")
