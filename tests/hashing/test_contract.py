"""Contract tests every dynamic hash table must satisfy."""

import numpy as np
import pytest

from repro.errors import (
    DuplicateServerError,
    EmptyTableError,
    UnknownServerError,
)
from repro.hashing import (
    BoundedLoadConsistentHashTable,
    ConsistentHashTable,
    HDHashTable,
    HierarchicalHashTable,
    JumpHashTable,
    MaglevHashTable,
    ModularHashTable,
    MultiProbeConsistentHashTable,
    RendezvousHashTable,
    WeightedRendezvousHashTable,
)

from ..conftest import populate


def _build(cls):
    if cls is HDHashTable:
        return cls(seed=1, dim=1_024, codebook_size=128)
    if cls is MaglevHashTable:
        return cls(seed=1, table_size=251)
    if cls is HierarchicalHashTable:
        return cls(
            outer_factory=lambda: ConsistentHashTable(seed=1),
            inner_factory=lambda: RendezvousHashTable(seed=1),
            n_groups=3,
            seed=1,
        )
    return cls(seed=1)


ALL_TABLES = [
    ModularHashTable,
    ConsistentHashTable,
    RendezvousHashTable,
    HDHashTable,
    JumpHashTable,
    MaglevHashTable,
    BoundedLoadConsistentHashTable,
    WeightedRendezvousHashTable,
    MultiProbeConsistentHashTable,
    HierarchicalHashTable,
]


@pytest.mark.parametrize("cls", ALL_TABLES)
class TestMembership:
    def test_join_and_contains(self, cls):
        table = _build(cls)
        table.join("alpha")
        assert "alpha" in table
        assert table.server_count == 1
        assert table.server_ids == ("alpha",)

    def test_duplicate_join_rejected(self, cls):
        table = _build(cls)
        table.join("alpha")
        with pytest.raises(DuplicateServerError):
            table.join("alpha")

    def test_leave_removes(self, cls):
        table = populate(_build(cls), 4)
        table.leave(2)
        assert 2 not in table
        assert table.server_count == 3

    def test_leave_unknown_rejected(self, cls):
        table = _build(cls)
        with pytest.raises(UnknownServerError):
            table.leave("ghost")

    def test_len_and_repr(self, cls):
        table = populate(_build(cls), 3)
        assert len(table) == 3
        assert "3" in repr(table)


@pytest.mark.parametrize("cls", ALL_TABLES)
class TestLookups:
    def test_empty_table_raises(self, cls):
        table = _build(cls)
        with pytest.raises(EmptyTableError):
            table.lookup("key")
        with pytest.raises(EmptyTableError):
            table.lookup_batch(np.arange(4, dtype=np.uint64))

    def test_lookup_returns_member(self, cls):
        table = populate(_build(cls), 8)
        for key in ("a", "b", 42, b"raw"):
            assert table.lookup(key) in table.server_ids

    def test_lookup_deterministic(self, cls):
        table = populate(_build(cls), 8)
        assert table.lookup("stable-key") == table.lookup("stable-key")

    def test_scalar_matches_batch(self, cls, request_words):
        table = populate(_build(cls), 8)
        words = request_words[:200]
        batch = table.route_batch(words)
        scalar = [table.route_word(int(word)) for word in words]
        assert batch.tolist() == scalar

    def test_lookup_batch_returns_ids(self, cls, request_words):
        table = populate(_build(cls), 8)
        keys = np.arange(100, dtype=np.uint64)
        assigned = table.lookup_batch(keys)
        assert assigned.shape == (100,)
        assert set(assigned.tolist()) <= set(table.server_ids)

    def test_lookup_batch_mixed_keys(self, cls):
        table = populate(_build(cls), 4)
        assigned = table.lookup_batch(["a", "b", "c"])
        assert assigned.shape == (3,)

    def test_all_servers_reachable(self, cls, request_words):
        table = populate(_build(cls), 8)
        slots = table.route_batch(request_words)
        assert set(np.unique(slots).tolist()) == set(range(8))


@pytest.mark.parametrize("cls", ALL_TABLES)
class TestReplicaDeterminism:
    def test_identically_built_tables_agree(self, cls, request_words):
        first = populate(_build(cls), 12)
        second = populate(_build(cls), 12)
        assert np.array_equal(
            first.route_batch(request_words), second.route_batch(request_words)
        )

    def test_agreement_survives_churn(self, cls, request_words):
        def churn(table):
            populate(table, 10)
            table.leave(3)
            table.leave(7)
            table.join("late-1")
            table.join("late-2")
            return table

        first = churn(_build(cls))
        second = churn(_build(cls))
        a = first.route_batch(request_words)
        b = second.route_batch(request_words)
        assert np.array_equal(a, b)
        assert first.server_ids == second.server_ids


@pytest.mark.parametrize("cls", ALL_TABLES)
class TestMemoryRegions:
    def test_regions_exist_and_are_writable(self, cls):
        table = populate(_build(cls), 6)
        regions = table.memory_regions()
        assert regions, "every table must expose routing state"
        for region in regions:
            assert region.n_bits > 0
            region.flip(0)
            region.flip(0)  # restore

    def test_region_flips_are_visible_to_lookups(self, cls, request_words):
        """Corrupting the exposed state must be able to change routing --
        otherwise the robustness experiment would be vacuous.  HD hashing
        is *designed* to shrug off scattered flips, so corruption is
        applied in escalating chunks until routing reacts."""
        table = populate(_build(cls), 6)
        words = request_words[:300]
        reference = table.route_batch(words).copy()
        regions = table.memory_regions()
        rng = np.random.default_rng(9)
        snapshot = [region.snapshot() for region in regions]
        changed = False
        flipped = 0
        budget = sum(region.n_bits for region in regions) // 2
        while not changed and flipped < budget:
            for __ in range(max(10, budget // 20)):
                region = regions[rng.integers(0, len(regions))]
                region.flip(int(rng.integers(0, region.n_bits)))
                flipped += 1
            changed = not np.array_equal(table.route_batch(words), reference)
        for region, saved in zip(regions, snapshot):
            region.restore(saved)
        assert changed, "massive corruption never changed any route"
        assert np.array_equal(table.route_batch(words), reference)
