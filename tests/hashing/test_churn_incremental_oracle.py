"""Oracle properties for the array-level bulk membership kernels.

Every algorithm advertising ``churn-incremental`` overrides
:meth:`~repro.hashing.base.DynamicHashTable._join_many` /
:meth:`~repro.hashing.base.DynamicHashTable._leave_many` with one
structural operation per membership *event*.  The documented contract
is bit-exactness: a bulk batch must leave the table routing identically
to joining/leaving the same ids one at a time, in order.  These
properties replay random join/leave/route schedules twice -- once
through the bulk kernels, once through a scalar shadow table that only
ever sees singleton events -- and require identical assignments after
every event (mirroring ``tests/hashing/test_maglev_incremental.py``,
which pins Maglev's deferred fill to its sequential oracle the same
way).  A mid-sequence ``state_dict`` round-trip rides along: restored
tables must keep taking the incremental path without drifting.
"""

import numpy as np
import pytest

from repro.hashing import DynamicHashTable, make_table
from repro.hashing.registry import algorithm_entry, registered_algorithms

#: Constructor overrides keeping the expensive tables test-sized.
LIGHT_CONFIGS = {
    "hd": {"dim": 1_024, "codebook_size": 128},
    "maglev": {"table_size": 131},
}

#: Registry-driven coverage: a new bulk-kernel algorithm is picked up
#: the moment its override lands.
INCREMENTAL_ALGORITHMS = [
    name
    for name in registered_algorithms()
    if "churn-incremental" in algorithm_entry(name).capabilities
]


def build(name, seed):
    return make_table(name, seed=seed, **LIGHT_CONFIGS.get(name, {}))


def assert_same_routing(table, shadow, words):
    assert list(table.server_ids) == list(shadow.server_ids)
    assert np.array_equal(
        table.lookup_words(words), shadow.lookup_words(words)
    )


def random_schedule(rng, universe=40, steps=10):
    """Yield (kind, ids) events over a bounded server universe.

    Joins arrive in batches of 1-3 fresh ids; leaves retire random
    batches of current members.  The pool is kept non-empty so routing
    comparisons are always possible.
    """
    pool = []
    next_id = 0
    for __ in range(steps):
        if not pool or (next_id < universe and rng.random() < 0.6):
            width = int(rng.integers(1, 4))
            ids = ["srv-{:03d}".format(next_id + i) for i in range(width)]
            next_id += width
            pool.extend(ids)
            yield "join", ids
        else:
            width = int(rng.integers(1, min(3, len(pool)) + 1))
            if width >= len(pool):
                width = len(pool) - 1 or 1
            picks = rng.choice(len(pool), size=width, replace=False)
            ids = [pool[int(index)] for index in sorted(picks)]
            for server_id in ids:
                pool.remove(server_id)
            if not pool:
                pool.extend(ids[:1])
                ids = ids[1:]
            if ids:
                yield "leave", ids


class TestBulkKernelsMatchScalarOracle:
    @pytest.mark.parametrize("name", INCREMENTAL_ALGORITHMS)
    @pytest.mark.parametrize("seed", range(12))
    def test_random_schedules_route_identically(self, name, seed):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2**64, 256, dtype=np.uint64)
        table = build(name, seed)
        shadow = build(name, seed)
        for kind, ids in random_schedule(rng):
            if kind == "join":
                table.join_many(ids)
                for server_id in ids:
                    shadow.join(server_id)
            else:
                table.leave_many(ids)
                for server_id in ids:
                    shadow.leave(server_id)
            # Route after *every* event so lazily-deferred state is
            # forced at arbitrary points of the history, not just once
            # at the end.
            assert_same_routing(table, shadow, words)

    @pytest.mark.parametrize(
        "name",
        [
            name
            for name in INCREMENTAL_ALGORITHMS
            if "weighted" in algorithm_entry(name).capabilities
        ],
    )
    @pytest.mark.parametrize("seed", range(6))
    def test_weighted_schedules_route_identically(self, name, seed):
        # Interleave non-unit-weight scalar admissions with bulk events:
        # the bulk kernels must stay exact over weighted owner state.
        rng = np.random.default_rng(1_000 + seed)
        words = rng.integers(0, 2**64, 256, dtype=np.uint64)
        table = build(name, seed)
        shadow = build(name, seed)
        heavy = 0
        for kind, ids in random_schedule(rng):
            if kind == "join":
                table.join_many(ids)
                for server_id in ids:
                    shadow.join(server_id)
            else:
                table.leave_many(ids)
                for server_id in ids:
                    shadow.leave(server_id)
            if rng.random() < 0.4:
                weight = float(rng.integers(2, 6))
                server_id = "heavy-{:03d}".format(heavy)
                heavy += 1
                table.join(server_id, weight=weight)
                shadow.join(server_id, weight=weight)
            assert_same_routing(table, shadow, words)

    @pytest.mark.parametrize("name", INCREMENTAL_ALGORITHMS)
    def test_mid_sequence_snapshot_roundtrip(self, name):
        rng = np.random.default_rng(777)
        words = rng.integers(0, 2**64, 256, dtype=np.uint64)
        table = build(name, 3)
        shadow = build(name, 3)
        events = list(random_schedule(rng, steps=12))
        midpoint = len(events) // 2
        for step, (kind, ids) in enumerate(events):
            if kind == "join":
                table.join_many(ids)
                for server_id in ids:
                    shadow.join(server_id)
            else:
                table.leave_many(ids)
                for server_id in ids:
                    shadow.leave(server_id)
            if step == midpoint:
                # Swap the bulk-path table for its snapshot restore and
                # keep going: the restored instance must route like the
                # original *and* keep the incremental path exact.
                table = DynamicHashTable.from_state(table.state_dict())
                assert_same_routing(table, shadow, words)
        assert_same_routing(table, shadow, words)
