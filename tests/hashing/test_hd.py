"""Semantic tests for HD hashing (the paper's contribution)."""

import numpy as np
import pytest

from repro.errors import CapacityError
from repro.hashfn import HashFamily
from repro.hashing import HDHashTable
from repro.hdc import circular_basis, level_basis
from repro.hdc.packing import hamming_packed

from ..conftest import populate


def _table(**kwargs):
    defaults = dict(seed=1, dim=1_024, codebook_size=128)
    defaults.update(kwargs)
    return HDHashTable(**defaults)


class TestEncoding:
    def test_server_placed_at_hash_position(self):
        table = _table()
        table.join("s0")
        natural = table.family.word("s0") % table.codebook_size
        assert table.position_of("s0") == natural

    def test_request_routes_to_nearest_row(self, request_words):
        table = populate(_table(), 10)
        memory = table.item_memory.memory_view()
        for word in request_words[:100]:
            position = int(word) % table.codebook_size
            query = table._codebook_packed[position]
            distances = hamming_packed(query, memory, table.item_memory.backend)
            assert table.route_word(int(word)) == int(np.argmin(distances))

    def test_request_on_server_node_routes_to_that_server(self):
        table = populate(_table(), 10)
        for server in table.server_ids:
            word = table.position_of(server)  # word % n == the node itself
            assert table.server_ids[table.route_word(word)] == server

    def test_nearest_circle_node_wins(self):
        """Routing approximates nearest-server-on-circle, both directions
        (Figure 1: 'the direction of rotation does not matter')."""
        table = populate(_table(codebook_size=256), 12)
        nodes = np.asarray(
            [table.position_of(server) for server in table.server_ids]
        )
        n = table.codebook_size
        agreements = 0
        for position in range(n):
            routed = table.route_word(position)
            delta = np.abs(nodes - position)
            circ = np.minimum(delta, n - delta)
            if circ[routed] == circ.min():
                agreements += 1
        assert agreements / n > 0.95


class TestPlacementCollisions:
    def test_probing_resolves_collisions(self):
        table = _table(codebook_size=4)
        for index in range(4):
            table.join(index)  # positions collide with only 4 nodes
        positions = {table.position_of(index) for index in range(4)}
        assert positions == {0, 1, 2, 3}

    def test_capacity_error_when_circle_full(self):
        table = _table(codebook_size=4)
        for index in range(4):
            table.join(index)
        with pytest.raises(CapacityError):
            table.join("overflow")

    def test_leave_frees_position(self):
        table = _table(codebook_size=4)
        for index in range(4):
            table.join(index)
        table.leave(2)
        table.join("replacement")
        assert table.server_count == 4


class TestBatchDedup:
    def test_kernel_runs_once_per_unique_word(self, monkeypatch):
        """A duplicate-heavy batch reaches the similarity kernel as one
        call over the unique circle positions only -- repeated words must
        not recompute their query."""
        table = populate(_table(), 8)
        words = np.asarray([5, 7, 5, 9, 7, 5] * 50, dtype=np.uint64)
        seen_query_counts = []
        original = type(table.item_memory).query_batch_words

        def spy(self, query_words, **kwargs):
            seen_query_counts.append(
                np.atleast_2d(np.asarray(query_words)).shape[0]
            )
            return original(self, query_words, **kwargs)

        monkeypatch.setattr(
            type(table.item_memory), "query_batch_words", spy
        )
        routed = table.route_batch(words)
        assert seen_query_counts == [3]  # one call, one row per unique word
        expected = {
            word: table.route_word(int(word)) for word in (5, 7, 9)
        }
        assert routed.tolist() == [expected[int(w)] for w in words]


class TestTieBreaks:
    def test_stable_under_rebuild(self, request_words):
        a = populate(_table(), 16)
        b = populate(_table(), 16)
        assert np.array_equal(
            a.route_batch(request_words), b.route_batch(request_words)
        )


class TestCodebookHandling:
    def test_shared_codebook_matches_owned(self, request_words):
        family = HashFamily(seed=1)
        rng = np.random.default_rng(family.derive("codebook").seed)
        shared = circular_basis(128, 1_024, rng)
        owned = populate(_table(), 8)
        injected = populate(HDHashTable(seed=1, codebook=shared), 8)
        assert np.array_equal(
            owned.route_batch(request_words),
            injected.route_batch(request_words),
        )

    def test_level_codebook_rejected_by_default(self, rng):
        basis = level_basis(64, 512, rng)
        with pytest.raises(ValueError):
            HDHashTable(seed=1, codebook=basis)

    def test_level_codebook_allowed_when_overridden(self, rng):
        basis = level_basis(64, 512, rng)
        table = HDHashTable(seed=1, codebook=basis, require_circular=False)
        populate(table, 4)
        assert table.lookup("k") in table.server_ids

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            _table(batch_size=0)


class TestMinimalDisruption:
    def test_leave_only_moves_leavers_keys(self, request_words):
        table = populate(_table(codebook_size=512), 16)
        ids = np.asarray(table.server_ids, dtype=object)
        before = ids[table.route_batch(request_words)]
        table.leave(5)
        ids_after = np.asarray(table.server_ids, dtype=object)
        after = ids_after[table.route_batch(request_words)]
        moved = before != after
        assert np.all(before[moved] == 5)


class TestMemoryRegions:
    def test_default_exposes_item_memory_only(self):
        table = populate(_table(), 4)
        names = [region.name for region in table.memory_regions()]
        assert names == ["item_memory"]

    def test_item_memory_bits_scale_with_servers(self):
        table = populate(_table(), 4)
        region = table.memory_regions()[0]
        assert region.n_bits == 4 * table.dim

    def test_codebook_region_optional(self):
        table = populate(_table(expose_codebook=True), 4)
        names = [region.name for region in table.memory_regions()]
        assert names == ["item_memory", "codebook"]
        codebook_region = table.memory_regions()[1]
        assert codebook_region.n_bits == table.codebook_size * table.dim


class TestRobustnessMechanism:
    def test_scattered_flips_rarely_change_routes(self, request_words):
        """The Figure 5 mechanism at unit-test scale: 10 flips across the
        item memory leave the vast majority of routes untouched."""
        table = populate(HDHashTable(seed=1, dim=4_096, codebook_size=512), 32)
        words = request_words
        reference = table.route_batch(words).copy()
        region = table.memory_regions()[0]
        rng = np.random.default_rng(11)
        saved = region.snapshot()
        mismatches = []
        for __ in range(5):
            for bit in rng.choice(region.n_bits, size=10, replace=False):
                region.flip(int(bit))
            observed = table.route_batch(words)
            mismatches.append(float(np.mean(observed != reference)))
            region.restore(saved)
        assert np.mean(mismatches) < 0.01
