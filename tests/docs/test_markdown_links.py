"""Intra-repo link integrity for the documentation tree.

Backs the CI ``docs`` job: every relative link in ``README.md`` and
``docs/*.md`` must point at a file that exists, and every fragment
(``file.md#anchor`` or ``#anchor``) must match a heading in the target
document, using GitHub's heading-slug rules.  External links
(``http(s)://``, ``mailto:``) are out of scope -- the check must stay
hermetic.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCUMENTS = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

_LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def links_of(document: Path):
    in_fence = False
    for line in document.read_text().splitlines():
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield match.group(1)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # code spans keep text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    text = re.sub(r"[*_]", "", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(document: Path):
    anchors = set()
    in_fence = False
    for line in document.read_text().splitlines():
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(github_slug(match.group(2)))
    return anchors


def test_documents_exist():
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md") in DOCUMENTS
    assert (REPO_ROOT / "docs" / "PERFORMANCE.md") in DOCUMENTS


@pytest.mark.parametrize(
    "document", DOCUMENTS, ids=[d.name for d in DOCUMENTS]
)
def test_relative_links_resolve(document):
    broken = []
    for target in links_of(document):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (
            document
            if not path_part
            else (document.parent / path_part).resolve()
        )
        if not resolved.exists():
            broken.append(target)
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                broken.append(target + " (missing anchor)")
    assert not broken, "dead links in {}: {}".format(document.name, broken)


def test_every_doc_is_reachable_from_readme():
    readme = REPO_ROOT / "README.md"
    linked = set()
    for target in links_of(readme):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part = target.partition("#")[0]
        if path_part:
            linked.add((readme.parent / path_part).resolve())
    for document in (REPO_ROOT / "docs").glob("*.md"):
        assert document.resolve() in linked, (
            "docs/{} is not linked from the README".format(document.name)
        )
