"""ControlLoop: reconciliation ticks, graceful drains, dead rescue."""

import numpy as np
import pytest

from repro.control import (
    Autoscaler,
    ControlLoop,
    FleetState,
    Health,
    HealthMonitor,
    ServerSpec,
    UtilizationPolicy,
)
from repro.errors import StateError
from repro.hashing import make_table, weighted_table
from repro.service import Router
from repro.store import DataPlane


def _stack(weights=(1.0, 2.0, 4.0, 1.0), algorithm="rendezvous", n_keys=2_000):
    fleet = FleetState(
        ServerSpec("s{}".format(index), weight=weight)
        for index, weight in enumerate(weights)
    )
    router = Router(weighted_table(algorithm, seed=9))
    plane = DataPlane(router)
    loop = ControlLoop(router, plane, fleet, max_keys_per_tick=500)
    loop.bootstrap()
    keys = np.arange(n_keys, dtype=np.int64)
    plane.put_many(keys, ["value-{}".format(key) for key in keys])
    plane.track()
    return loop, keys


class TestConstruction:
    def test_plane_must_share_router(self):
        fleet = FleetState([ServerSpec("a")])
        router = Router(make_table("modular"))
        other = Router(make_table("modular"))
        with pytest.raises(ValueError):
            ControlLoop(router, DataPlane(other), fleet)

    def test_monitor_must_share_fleet(self):
        fleet = FleetState([ServerSpec("a")])
        router = Router(make_table("modular"))
        with pytest.raises(ValueError):
            ControlLoop(
                router,
                DataPlane(router),
                fleet,
                monitor=HealthMonitor(FleetState()),
            )

    def test_bootstrap_threads_weights(self):
        loop, __ = _stack()
        assert loop.router.table.weight_of("s2") == 4.0
        assert set(loop.router.server_ids) == {"s0", "s1", "s2", "s3"}


class TestGracefulDrain:
    def test_drain_invariants(self):
        loop, keys = _stack()
        plane = loop.plane
        misses = []

        def on_tick(status):
            sample = np.random.default_rng(0).choice(keys, 300)
            __, found = plane.get_many(sample)
            misses.append(int(np.sum(~found)))

        report = loop.drain("s2", on_tick=on_tick)
        # Zero read misses at any point during the drain.
        assert sum(misses) == 0 and len(misses) >= 1
        # The epoch billed exactly the executed plan.
        assert report.record.probes_moved == report.plan.total_keys
        # The drained server is gone everywhere.
        assert "s2" not in loop.router.table
        assert "s2" not in loop.fleet
        assert "s2" not in plane.stores
        # Every key reads at its routed owner.
        __, found = plane.get_many(keys)
        assert bool(np.all(found))

    def test_drain_plan_preview_is_pure(self):
        loop, __ = _stack()
        before = loop.router.epoch
        plan = loop.drain_plan("s2")
        assert plan.total_keys > 0
        assert loop.router.epoch == before
        assert "s2" in loop.router.table

    def test_cannot_drain_last_server(self):
        fleet = FleetState([ServerSpec("only")])
        router = Router(make_table("modular"))
        plane = DataPlane(router)
        loop = ControlLoop(router, plane, fleet)
        loop.bootstrap()
        with pytest.raises(StateError):
            loop.drain("only")

    def test_scale_down_via_tick_uses_graceful_drain(self):
        """An under-utilized fleet drains (copy-first), never hard-leaves."""
        loop, keys = _stack(weights=(1.0, 1.0, 1.0, 1.0))
        plane = loop.plane
        used = plane.total_bytes
        loop._autoscaler = Autoscaler(
            UtilizationPolicy(
                capacity_bytes_per_weight=int(used / (0.05 * 4)),
                min_servers=3,
            )
        )
        misses = []

        def on_tick(status):
            sample = np.random.default_rng(1).choice(keys, 200)
            __, found = plane.get_many(sample)
            misses.append(int(np.sum(~found)))

        report = loop.tick(on_migration_tick=on_tick)
        assert report.decision is not None and report.decision.drain
        assert len(report.drains) == 1
        assert sum(misses) == 0
        assert loop.router.server_count == 3
        __, found = plane.get_many(keys)
        assert bool(np.all(found))


class TestTick:
    def test_steady_state_is_noop(self):
        loop, __ = _stack()
        report = loop.tick()
        assert report.is_noop
        assert report.epochs == ()
        assert "steady state" in report.describe()

    def test_scale_up_admits_and_migrates(self):
        loop, keys = _stack(weights=(1.0, 1.0))
        plane = loop.plane
        used = plane.total_bytes
        loop._autoscaler = Autoscaler(
            UtilizationPolicy(
                capacity_bytes_per_weight=int(used / (2.0 * 2)),
                max_servers=16,
            )
        )
        report = loop.tick()
        assert report.admitted
        assert report.moved_keys > 0
        assert loop.router.server_count > 2
        __, found = plane.get_many(keys)
        assert bool(np.all(found))
        # Admitted servers joined the fleet directory too.
        for server_id in report.admitted:
            assert server_id in loop.fleet

    def test_dead_server_removed_and_data_rescued(self):
        fleet = FleetState(
            [ServerSpec("a"), ServerSpec("b"), ServerSpec("c")]
        )
        router = Router(make_table("rendezvous", seed=4))
        plane = DataPlane(router)
        monitor = HealthMonitor(fleet, clock=lambda: 0.0)
        loop = ControlLoop(
            router, plane, fleet, monitor=monitor, max_keys_per_tick=500
        )
        loop.bootstrap()
        keys = np.arange(1_500, dtype=np.int64)
        plane.put_many(keys, ["v{}".format(key) for key in keys])
        plane.track()
        for server_id in ("a", "b", "c"):
            monitor.heartbeat(server_id, now=0.0)
        monitor.heartbeat("a", now=50.0)
        monitor.heartbeat("b", now=50.0)
        report = loop.tick(now=50.0)
        transitions = {
            (t.server_id, t.current) for t in report.transitions
        }
        assert ("c", Health.DEAD) in transitions
        assert report.removed == ("c",)
        assert "c" not in router.table
        assert "c" not in fleet
        # The dead server's keys were rescued to their new owners.
        __, found = plane.get_many(keys)
        assert bool(np.all(found))
        assert "c" not in plane.stores

    def test_suspect_flagged_into_avoid_and_recovered(self):
        fleet = FleetState([ServerSpec("a"), ServerSpec("b"), ServerSpec("c")])
        router = Router(make_table("rendezvous", seed=4))
        plane = DataPlane(router)
        monitor = HealthMonitor(fleet, clock=lambda: 0.0)
        loop = ControlLoop(router, plane, fleet, monitor=monitor)
        loop.bootstrap()
        for server_id in ("a", "b", "c"):
            monitor.heartbeat(server_id, now=0.0)
        monitor.heartbeat("a", now=5.0)
        monitor.heartbeat("b", now=5.0)
        report = loop.tick(now=5.0)
        assert router.avoided == frozenset({"c"})
        assert fleet.get("c").health is Health.SUSPECT
        # No epoch: failover is routing-level only.
        assert report.epochs == ()
        # Traffic routes around the suspect.
        owners = {router.route(key) for key in range(200)}
        assert "c" not in owners
        # Recovery lifts the flag at the next tick.
        monitor.heartbeat("c", now=6.0)
        assert fleet.get("c").health is Health.HEALTHY
        loop.tick(now=6.0)
        assert router.avoided == frozenset()

    def test_plan_only_mutates_nothing(self):
        loop, __ = _stack()
        loop.fleet.mark_draining("s2")
        used = loop.plane.total_bytes
        loop._autoscaler = Autoscaler(
            UtilizationPolicy(
                capacity_bytes_per_weight=int(used / (2.0 * 8)),
                max_servers=32,
            )
        )
        epoch = loop.router.epoch
        key_count = loop.plane.key_count
        report = loop.tick(plan_only=True)
        assert report.plan_only
        assert loop.router.epoch == epoch
        assert loop.plane.key_count == key_count
        assert "s2" in loop.router.table
        assert report.decision is not None and report.decision.add
        assert dict(report.pending_drain_keys)["s2"] > 0
        assert "would" in report.describe()


class TestDrainEdgeCases:
    def test_mid_drain_delete_stays_deleted(self):
        """A key deleted while its pre-copy sits at the destination must
        not resurrect at cutover (the source was authoritative)."""
        loop, keys = _stack()
        plane = loop.plane
        deleted = []

        def on_tick(status):
            # Delete a handful of already-copied keys at their
            # (still-authoritative) source, through the data plane.
            for store in list(plane.stores.values()):
                for key in store.keys()[:1]:
                    key = int(key)
                    if key not in deleted:
                        plane.delete(key)
                        deleted.append(key)
                        break

        loop.drain("s2", on_tick=on_tick)
        assert deleted
        for key in deleted:
            with pytest.raises(KeyError):
                plane.get(key)
            # Gone from every store, not just the routed one.
            assert all(key not in store for store in plane.stores.values())
        # Everything not deleted is intact.
        survivors = np.asarray(sorted(set(keys.tolist()) - set(deleted)))
        __, found = plane.get_many(survivors)
        assert bool(np.all(found))
        assert plane.key_count == survivors.size

    def test_mid_drain_write_is_not_stranded(self):
        loop, keys = _stack()
        plane = loop.plane
        fresh = []

        def on_tick(status):
            if not fresh:
                plane.put(999_999, "late-write")
                fresh.append(999_999)

        loop.drain("s2", on_tick=on_tick)
        assert plane.get(999_999) == "late-write"
        owner = loop.router.route(999_999)
        assert 999_999 in plane.store(owner)

    def test_tick_leaves_undrainable_last_server_pending(self):
        """Marking every server draining must not wedge the loop."""
        fleet = FleetState([ServerSpec("a"), ServerSpec("b")])
        router = Router(make_table("modular", seed=1))
        plane = DataPlane(router)
        loop = ControlLoop(router, plane, fleet)
        loop.bootstrap()
        plane.put_many(np.arange(50, dtype=np.int64), list(range(50)))
        plane.track()
        fleet.mark_draining("a")
        fleet.mark_draining("b")
        report = loop.tick()
        assert len(report.drains) == 1
        # The survivor cannot drain (last server); the loop reports it
        # pending instead of raising, tick after tick.
        report = loop.tick()
        assert report.drains == ()
        assert report.pending_drains != ()
        loop.tick()  # still no crash
        assert router.server_count == 1
        __, found = plane.get_many(np.arange(50, dtype=np.int64))
        assert bool(np.all(found))

    def test_plan_only_preserves_custom_probe_population(self):
        """A plan-only tick (and drain_plan) must not replace the
        router's installed probe set with the stored keys."""
        loop, __ = _stack()
        custom = np.arange(100_000, 100_500, dtype=np.int64)
        loop.router.track(custom)
        loop.fleet.mark_draining("s2")
        loop.tick(plan_only=True)
        assert loop.router.delta_tracker.tracked == custom.size
        loop.drain_plan("s0")
        assert loop.router.delta_tracker.tracked == custom.size

    def test_write_during_suspect_survives_recovery(self):
        """Writes stay at the assigned owner while it is suspect, so a
        transient health blip can never strand data on a replica."""
        fleet = FleetState([ServerSpec("a"), ServerSpec("b"), ServerSpec("c")])
        router = Router(make_table("rendezvous", seed=4))
        plane = DataPlane(router)
        monitor = HealthMonitor(fleet, clock=lambda: 0.0)
        loop = ControlLoop(router, plane, fleet, monitor=monitor)
        loop.bootstrap()
        for server_id in ("a", "b", "c"):
            monitor.heartbeat(server_id, now=0.0)
        monitor.heartbeat("a", now=5.0)
        monitor.heartbeat("b", now=5.0)
        loop.tick(now=5.0)
        assert router.avoided == frozenset({"c"})
        # Find a key whose *assignment* is the suspect and write it.
        key = next(k for k in range(10_000) if router.assign(k) == "c")
        plane.put(key, "flap-proof")
        assert key in plane.store("c")
        # Mid-suspect the read fails over and misses (transient).
        assert plane.get(key, default=None) is None
        # Recovery: the key reads back at its assigned owner.
        monitor.heartbeat("c", now=6.0)
        loop.tick(now=6.0)
        assert router.avoided == frozenset()
        assert plane.get(key) == "flap-proof"

    def test_readmitted_server_gets_fresh_grace_period(self):
        """A machine re-admitted under its old id starts a fresh
        deadline clock instead of inheriting the dead one."""
        fleet = FleetState([ServerSpec("a"), ServerSpec("b"), ServerSpec("c")])
        router = Router(make_table("rendezvous", seed=4))
        plane = DataPlane(router)
        monitor = HealthMonitor(fleet, clock=lambda: 0.0)
        loop = ControlLoop(router, plane, fleet, monitor=monitor)
        loop.bootstrap()
        plane.put_many(np.arange(200, dtype=np.int64), list(range(200)))
        plane.track()
        for server_id in ("a", "b", "c"):
            monitor.heartbeat(server_id, now=0.0)
        monitor.heartbeat("a", now=50.0)
        monitor.heartbeat("b", now=50.0)
        loop.tick(now=50.0)
        assert "c" not in fleet
        # The machine recovers and re-joins as a fresh spec.
        fleet.add(ServerSpec("c"))
        report = loop.tick(now=51.0)
        assert fleet.get("c").health is Health.HEALTHY
        assert "c" in router.table
        assert not any(t.server_id == "c" for t in report.transitions)
        # It only goes suspect again after a *fresh* deadline expires.
        loop.tick(now=52.0)
        assert fleet.get("c").health is Health.HEALTHY
        monitor.poll(now=51.0 + monitor.suspect_after)
        assert fleet.get("c").health is Health.SUSPECT

    def test_drain_never_deletes_inflight_backlog(self):
        """Keys assigned to the drained server but physically still at
        an old owner (unfinished earlier migration) must survive the
        drain untouched -- the reconcile must not misread them as
        mid-drain deletes and destroy their only copy."""
        from repro.service import MigrationExecutor

        fleet = FleetState([ServerSpec("a"), ServerSpec("b"), ServerSpec("c")])
        router = Router(make_table("rendezvous", seed=21))
        plane = DataPlane(router)
        loop = ControlLoop(router, plane, fleet, max_keys_per_tick=100)
        loop.bootstrap()
        keys = np.arange(500, dtype=np.int64)
        plane.put_many(keys, ["v{}".format(key) for key in keys])
        plane.track()
        # Admit d and execute its migration plan only partially: part
        # of d's keys stay in flight at their old owners.
        fleet.add(ServerSpec("d"))
        result = router.sync(fleet.members())
        executor = MigrationExecutor(
            result.plan, plane, max_keys_per_tick=40
        )
        executor.tick()  # one tick only -- the rest stays in flight
        in_flight = result.plan.total_keys - executor.status.committed
        assert in_flight > 0
        # Now gracefully drain d.  Its drain plan includes the
        # in-flight keys (assigned to d, never physically there).
        fleet.mark_draining("d")
        loop.tick()
        assert "d" not in router.table
        # Nothing was destroyed: every key is still stored somewhere
        # and readable at its routed owner.
        assert plane.key_count == keys.size
        __, found = plane.get_many(keys)
        assert bool(np.all(found))

    def test_read_only_drain_copies_each_key_once(self):
        """With read-only mid-drain traffic the catch-up pass is
        skipped: every moving key is copied exactly once."""
        loop, keys = _stack()
        plane = loop.plane

        def on_tick(status):
            plane.get_many(keys[:100])  # reads only

        report = loop.drain("s2", on_tick=on_tick)
        assert report.copied == report.plan.total_keys
