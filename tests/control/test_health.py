"""HealthMonitor: heartbeat deadlines, transitions, observer hooks."""

import pytest

from repro.control import (
    FleetState,
    Health,
    HealthMonitor,
    HealthObserver,
    ServerSpec,
)
from repro.errors import StateError


def _fleet():
    return FleetState([ServerSpec("a"), ServerSpec("b"), ServerSpec("c")])


def _monitor(fleet, **kwargs):
    kwargs.setdefault("suspect_after", 3.0)
    kwargs.setdefault("dead_after", 10.0)
    kwargs.setdefault("clock", lambda: 0.0)
    return HealthMonitor(fleet, **kwargs)


class TestDeadlines:
    def test_bad_deadlines_rejected(self):
        with pytest.raises(ValueError):
            HealthMonitor(_fleet(), suspect_after=5.0, dead_after=5.0)
        with pytest.raises(ValueError):
            HealthMonitor(_fleet(), suspect_after=0.0, dead_after=5.0)

    def test_first_poll_starts_grace_period(self):
        fleet = _fleet()
        monitor = _monitor(fleet)
        # Never beaten: first poll registers, no transition.
        assert monitor.poll(now=100.0) == ()
        assert fleet.get("a").health is Health.HEALTHY
        # Within the suspect deadline: still quiet.
        assert monitor.poll(now=102.9) == ()

    def test_missed_heartbeats_suspect_then_dead(self):
        fleet = _fleet()
        monitor = _monitor(fleet)
        for server_id in ("a", "b", "c"):
            monitor.heartbeat(server_id, now=0.0)
        monitor.heartbeat("b", now=5.0)
        transitions = monitor.poll(now=5.0)
        assert {t.server_id for t in transitions} == {"a", "c"}
        assert all(t.current is Health.SUSPECT for t in transitions)
        # a and c stay silent past the dead deadline; b keeps beating.
        monitor.heartbeat("b", now=11.0)
        transitions = monitor.poll(now=11.0)
        assert {t.server_id for t in transitions} == {"a", "c"}
        assert all(t.current is Health.DEAD for t in transitions)
        assert fleet.get("b").health is Health.HEALTHY

    def test_heartbeat_recovers_suspect(self):
        fleet = _fleet()
        monitor = _monitor(fleet)
        monitor.heartbeat("a", now=0.0)
        monitor.poll(now=4.0)
        assert fleet.get("a").health is Health.SUSPECT
        recovery = monitor.heartbeat("a", now=4.5)
        assert recovery is not None
        assert recovery.previous is Health.SUSPECT
        assert recovery.current is Health.HEALTHY
        assert fleet.get("a").health is Health.HEALTHY

    def test_draining_exempt_from_deadlines(self):
        fleet = _fleet()
        monitor = _monitor(fleet)
        monitor.heartbeat("a", now=0.0)
        fleet.mark_draining("a")
        assert monitor.poll(now=50.0) == ()
        assert fleet.get("a").health is Health.DRAINING

    def test_dead_heartbeat_rejected(self):
        fleet = _fleet()
        monitor = _monitor(fleet)
        monitor.heartbeat("a", now=0.0)
        monitor.poll(now=20.0)
        assert fleet.get("a").health is Health.DEAD
        with pytest.raises(StateError):
            monitor.heartbeat("a", now=21.0)


class TestObservers:
    def test_observer_sees_every_transition(self):
        fleet = _fleet()
        monitor = _monitor(fleet)
        seen = []

        class Recorder(HealthObserver):
            def on_transition(self, transition):
                seen.append(
                    (transition.server_id, transition.current)
                )

        monitor.subscribe(Recorder())
        monitor.heartbeat("a", now=0.0)
        monitor.poll(now=4.0)
        monitor.heartbeat("a", now=4.5)
        assert seen == [
            ("a", Health.SUSPECT),
            ("a", Health.HEALTHY),
        ]

    def test_unsubscribe(self):
        monitor = _monitor(_fleet())
        observer = HealthObserver()
        monitor.subscribe(observer)
        monitor.unsubscribe(observer)
        with pytest.raises(ValueError):
            monitor.unsubscribe(observer)
