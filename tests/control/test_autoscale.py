"""Autoscaler: utilization math, band decisions, drain nominations."""

import numpy as np
import pytest

from repro.control import (
    AutoscaleDecision,
    AutoscalePolicy,
    Autoscaler,
    FleetState,
    ServerSpec,
    UtilizationPolicy,
)
from repro.hashing import weighted_table
from repro.service import Router
from repro.store import DataPlane


def _plane_with(fleet, n_keys, value_bytes=56):
    router = Router(weighted_table("rendezvous", seed=2))
    router.sync(fleet.members())
    plane = DataPlane(router)
    if n_keys:
        keys = np.arange(n_keys, dtype=np.int64)
        plane.put_many(keys, [b"x" * value_bytes] * n_keys)
    return plane


class TestUtilizationPolicy:
    def test_band_validation(self):
        with pytest.raises(ValueError):
            UtilizationPolicy(lower=0.7, target_utilization=0.6, upper=0.8)
        with pytest.raises(ValueError):
            UtilizationPolicy(capacity_bytes_per_weight=0)
        with pytest.raises(ValueError):
            UtilizationPolicy(min_servers=5, max_servers=2)

    def test_utilization_math(self):
        policy = UtilizationPolicy(capacity_bytes_per_weight=1_000)
        assert policy.capacity_bytes(4.0) == 4_000
        assert policy.utilization(2_000, 4.0) == pytest.approx(0.5)
        assert policy.utilization(0, 0.0) == 0.0
        assert policy.utilization(1, 0.0) == float("inf")

    def test_wanted_weight_targets_the_band_center(self):
        policy = UtilizationPolicy(
            capacity_bytes_per_weight=1_000, target_utilization=0.5
        )
        # 3000 bytes at 50% target utilization needs weight 6.
        assert policy.wanted_weight(3_000) == pytest.approx(6.0)


class TestDecisions:
    def test_in_band_is_noop(self):
        fleet = FleetState([ServerSpec("a"), ServerSpec("b")])
        plane = _plane_with(fleet, n_keys=100)
        used = plane.total_bytes
        policy = UtilizationPolicy(
            capacity_bytes_per_weight=int(used / (0.6 * 2))
        )
        decision = Autoscaler(policy).decide(plane, fleet)
        assert decision.is_noop
        assert 0.35 < decision.utilization < 0.8
        assert "hold" in decision.describe()

    def test_over_band_admits_enough_weight(self):
        fleet = FleetState([ServerSpec("a"), ServerSpec("b")])
        plane = _plane_with(fleet, n_keys=400)
        used = plane.total_bytes
        # Capacity sized so the fleet sits at ~160% utilization.
        policy = UtilizationPolicy(
            capacity_bytes_per_weight=int(used / (1.6 * 2)),
            max_servers=32,
        )
        scaler = Autoscaler(policy)
        decision = scaler.decide(plane, fleet)
        assert decision.add and not decision.drain
        added_weight = sum(spec.weight for spec in decision.add)
        wanted = policy.wanted_weight(used)
        assert 2 + added_weight >= wanted
        # decide() is pure: an unapplied preview repeats identically...
        again = scaler.decide(plane, fleet)
        assert again.add == decision.add
        # ...and once applied, the next decision skips the taken ids.
        for spec in decision.add:
            fleet.add(spec)
        after = scaler.decide(plane, fleet)
        taken = {spec.server_id for spec in decision.add}
        assert not taken & {spec.server_id for spec in after.add}

    def test_under_band_nominates_emptiest_healthy_drains(self):
        fleet = FleetState(
            [ServerSpec("a"), ServerSpec("b"), ServerSpec("c"), ServerSpec("d")]
        )
        plane = _plane_with(fleet, n_keys=60)
        used = plane.total_bytes
        # Utilization ~10%: well under the band.
        policy = UtilizationPolicy(
            capacity_bytes_per_weight=int(used / (0.10 * 4)),
            min_servers=2,
        )
        decision = Autoscaler(policy).decide(plane, fleet)
        assert decision.drain and not decision.add
        # Never below the server floor.
        assert len(decision.drain) <= 2
        # Nominations are the emptiest stores first.
        loads = {s: plane.store(s).nbytes for s in ("a", "b", "c", "d")}
        nominated = list(decision.drain)
        assert nominated == sorted(loads, key=loads.get)[: len(nominated)]

    def test_suspect_servers_count_capacity_but_never_drain(self):
        fleet = FleetState([ServerSpec("a"), ServerSpec("b"), ServerSpec("c")])
        fleet.mark_suspect("a")
        plane = _plane_with(fleet, n_keys=10)
        policy = UtilizationPolicy(
            capacity_bytes_per_weight=10**9, min_servers=2
        )
        decision = Autoscaler(policy).decide(plane, fleet)
        assert "a" not in decision.drain

    def test_custom_spawner(self):
        fleet = FleetState([ServerSpec("a"), ServerSpec("b")])
        plane = _plane_with(fleet, n_keys=500)
        policy = UtilizationPolicy(capacity_bytes_per_weight=8, max_servers=8)
        scaler = Autoscaler(
            policy,
            spawner=lambda index: ServerSpec(
                "big-{}".format(index), weight=4.0
            ),
        )
        decision = scaler.decide(plane, fleet)
        assert decision.add
        assert all(spec.weight == 4.0 for spec in decision.add)
        assert decision.add[0].server_id == "big-0"


class TestLegacyPolicy:
    """AutoscalePolicy moved here from the emulator; same behaviour."""

    def test_importable_from_both_homes(self):
        from repro.control.autoscale import AutoscalePolicy as from_control
        from repro.emulator.scenario import AutoscalePolicy as from_emulator

        assert from_control is from_emulator is AutoscalePolicy

    def test_band_logic_unchanged(self):
        policy = AutoscalePolicy(target_load=100.0)
        assert policy.decide(1_000, 4) == 6  # 250/srv -> grow to 10
        assert policy.decide(400, 4) == 0  # in band
        assert policy.decide(100, 4) == -2  # 25/srv -> shrink to 2


class TestDecisionDescribe:
    def test_describe_lists_actions(self):
        decision = AutoscaleDecision(
            add=(ServerSpec("x"),), drain=("y",), utilization=0.9
        )
        text = decision.describe()
        assert "add 1" in text and "drain 1" in text and "90%" in text
