"""ServerSpec / FleetState: metadata, lifecycle rules, persistence."""

import pytest

from repro.control import FleetState, Health, ServerSpec
from repro.errors import DuplicateServerError, StateError, UnknownServerError


class TestServerSpec:
    def test_defaults(self):
        spec = ServerSpec("a")
        assert spec.weight == 1.0
        assert spec.zone == ""
        assert spec.health is Health.HEALTHY
        assert spec.in_fleet

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            ServerSpec("a", weight=0.0)
        with pytest.raises(ValueError):
            ServerSpec("a", weight=-2.0)

    def test_health_coerced_from_string(self):
        spec = ServerSpec("a", health="draining")
        assert spec.health is Health.DRAINING

    def test_dead_is_not_in_fleet(self):
        assert not ServerSpec("a", health=Health.DEAD).in_fleet
        assert ServerSpec("a", health=Health.SUSPECT).in_fleet
        assert ServerSpec("a", health=Health.DRAINING).in_fleet

    def test_transitions_validated(self):
        spec = ServerSpec("a")
        suspect = spec.with_health(Health.SUSPECT)
        assert suspect.health is Health.SUSPECT
        assert suspect.with_health(Health.HEALTHY).health is Health.HEALTHY
        dead = suspect.with_health(Health.DEAD)
        # Dead is terminal.
        for target in (Health.HEALTHY, Health.SUSPECT, Health.DRAINING):
            with pytest.raises(StateError):
                dead.with_health(target)
        # Draining cannot become suspect (departure already planned).
        with pytest.raises(StateError):
            spec.with_health(Health.DRAINING).with_health(Health.SUSPECT)

    def test_state_roundtrip(self):
        spec = ServerSpec("a", weight=2.5, zone="eu", health=Health.SUSPECT)
        assert ServerSpec.from_state(spec.to_state()) == spec


class TestFleetState:
    def _fleet(self):
        return FleetState(
            [
                ServerSpec("a", weight=1.0, zone="z0"),
                ServerSpec("b", weight=2.0, zone="z1"),
                ServerSpec("c", weight=4.0, zone="z0"),
            ]
        )

    def test_directory_basics(self):
        fleet = self._fleet()
        assert len(fleet) == 3
        assert "b" in fleet
        assert fleet.get("b").weight == 2.0
        with pytest.raises(UnknownServerError):
            fleet.get("nope")
        with pytest.raises(DuplicateServerError):
            fleet.add(ServerSpec("a"))

    def test_members_exclude_dead_only(self):
        fleet = self._fleet()
        fleet.mark_suspect("a")
        fleet.mark_draining("b")
        fleet.mark_dead("c")
        assert [spec.server_id for spec in fleet.members()] == ["a", "b"]
        assert fleet.ids(Health.DEAD) == ("c",)
        assert fleet.total_weight == 3.0

    def test_weights_view(self):
        fleet = self._fleet()
        assert fleet.weights() == {"a": 1.0, "b": 2.0, "c": 4.0}
        fleet.mark_dead("c")
        assert fleet.weights() == {"a": 1.0, "b": 2.0}

    def test_by_zone(self):
        fleet = self._fleet()
        assert [s.server_id for s in fleet.by_zone("z0")] == ["a", "c"]

    def test_sweep_dead(self):
        fleet = self._fleet()
        fleet.mark_dead("b")
        swept = fleet.sweep_dead()
        assert [spec.server_id for spec in swept] == ["b"]
        assert "b" not in fleet
        assert fleet.sweep_dead() == ()

    def test_remove_returns_final_spec(self):
        fleet = self._fleet()
        fleet.mark_draining("a")
        spec = fleet.remove("a")
        assert spec.health is Health.DRAINING
        with pytest.raises(UnknownServerError):
            fleet.remove("a")

    def test_state_roundtrip_preserves_order_and_health(self):
        fleet = self._fleet()
        fleet.mark_suspect("b")
        restored = FleetState.from_state(fleet.to_state())
        assert restored.specs == fleet.specs

    def test_members_flow_into_router_sync(self):
        """Specs are accepted by Router.sync verbatim, weights threaded."""
        from repro.hashing import weighted_table
        from repro.service import Router

        fleet = self._fleet()
        router = Router(weighted_table("rendezvous", seed=1))
        router.sync(fleet.members())
        assert set(router.server_ids) == {"a", "b", "c"}
        assert router.table.weight_of("c") == 4.0
