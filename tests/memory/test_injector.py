"""Tests for flat-address fault injection over multiple regions."""

import numpy as np
import pytest

from repro.memory import FaultInjector, MemoryRegion, SingleBitFlips


def _regions():
    a = np.zeros(1, dtype=np.uint64)  # 64 bits
    b = np.zeros(2, dtype=np.uint32)  # 64 bits
    return a, b, [MemoryRegion("a", a), MemoryRegion("b", b)]


class TestAddressSpace:
    def test_total_bits(self):
        __, __, regions = _regions()
        assert FaultInjector(regions).n_bits == 128

    def test_locate_maps_across_regions(self):
        __, __, regions = _regions()
        injector = FaultInjector(regions)
        region, bit = injector.locate(0)
        assert region.name == "a" and bit == 0
        region, bit = injector.locate(63)
        assert region.name == "a" and bit == 63
        region, bit = injector.locate(64)
        assert region.name == "b" and bit == 0
        region, bit = injector.locate(127)
        assert region.name == "b" and bit == 63

    def test_locate_out_of_range(self):
        __, __, regions = _regions()
        injector = FaultInjector(regions)
        with pytest.raises(IndexError):
            injector.locate(128)

    def test_duplicate_names_rejected(self):
        array = np.zeros(1, dtype=np.uint8)
        with pytest.raises(ValueError):
            FaultInjector(
                [MemoryRegion("x", array), MemoryRegion("x", array.copy())]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector([])


class TestFlipping:
    def test_flip_flat_touches_right_region(self):
        a, b, regions = _regions()
        injector = FaultInjector(regions)
        flipped = injector.flip_flat([3, 64])
        assert a[0] == 1 << 3
        assert b[0] == 1
        assert flipped == [("a", 3), ("b", 0)]

    def test_inject_uses_model_sample(self, rng):
        a, b, regions = _regions()
        injector = FaultInjector(regions)
        flipped = injector.inject(SingleBitFlips(5), rng)
        assert len(flipped) == 5
        total_set = bin(int(a[0])).count("1") + sum(
            bin(int(word)).count("1") for word in b
        )
        assert total_set == 5

    def test_snapshot_restore_roundtrip(self, rng):
        a, b, regions = _regions()
        injector = FaultInjector(regions)
        saved = injector.snapshot()
        injector.inject(SingleBitFlips(9), rng)
        assert a[0] != 0 or b.any()
        injector.restore(saved)
        assert a[0] == 0 and not b.any()
