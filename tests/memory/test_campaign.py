"""Tests for the inject-replay-restore mismatch campaign."""

import numpy as np
import pytest

from repro.hashing import ConsistentHashTable, RendezvousHashTable
from repro.memory import (
    MismatchCampaign,
    NoError,
    SingleBitFlips,
    mismatch_fraction,
)

from ..conftest import populate


class TestMismatchFraction:
    def test_identical(self):
        a = np.asarray(["x", "y"], dtype=object)
        assert mismatch_fraction(a, a.copy()) == 0.0

    def test_half(self):
        a = np.asarray(["x", "y"], dtype=object)
        b = np.asarray(["x", "z"], dtype=object)
        assert mismatch_fraction(a, b) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mismatch_fraction(np.zeros(2), np.zeros(3))


class TestCampaign:
    def test_zero_errors_zero_mismatch(self, request_words):
        table = populate(ConsistentHashTable(seed=1), 16)
        campaign = MismatchCampaign(table, request_words)
        outcome = campaign.run(NoError(), trials=3, rng=np.random.default_rng(0))
        assert outcome.mean_mismatch == 0.0
        assert outcome.max_mismatch == 0.0

    def test_state_restored_after_run(self, request_words):
        table = populate(RendezvousHashTable(seed=1), 16)
        campaign = MismatchCampaign(table, request_words)
        before = table.route_batch(request_words).copy()
        campaign.run(SingleBitFlips(8), trials=4, rng=np.random.default_rng(1))
        after = table.route_batch(request_words)
        assert np.array_equal(before, after)

    def test_trial_count_and_flip_records(self, request_words):
        table = populate(RendezvousHashTable(seed=1), 8)
        campaign = MismatchCampaign(table, request_words)
        outcome = campaign.run(
            SingleBitFlips(3), trials=5, rng=np.random.default_rng(2)
        )
        assert len(outcome.trials) == 5
        assert all(len(trial.flipped_bits) == 3 for trial in outcome.trials)

    def test_corruption_produces_mismatch(self, request_words):
        table = populate(RendezvousHashTable(seed=1), 8)
        campaign = MismatchCampaign(table, request_words)
        outcome = campaign.run(
            SingleBitFlips(10), trials=5, rng=np.random.default_rng(3)
        )
        assert outcome.mean_mismatch > 0.0

    def test_region_name_filter(self, request_words):
        table = populate(ConsistentHashTable(seed=1), 8)
        campaign = MismatchCampaign(table, request_words)
        outcome = campaign.run(
            SingleBitFlips(2),
            trials=2,
            rng=np.random.default_rng(4),
            region_names=["ring_positions"],
        )
        assert len(outcome.trials) == 2
        with pytest.raises(KeyError):
            campaign.run(
                SingleBitFlips(2),
                trials=1,
                rng=np.random.default_rng(5),
                region_names=["nonexistent"],
            )

    def test_requires_requests(self):
        table = populate(ConsistentHashTable(seed=1), 4)
        with pytest.raises(ValueError):
            MismatchCampaign(table, np.empty(0, dtype=np.uint64))

    def test_statistics(self, request_words):
        table = populate(RendezvousHashTable(seed=1), 8)
        campaign = MismatchCampaign(table, request_words)
        outcome = campaign.run(
            SingleBitFlips(10), trials=6, rng=np.random.default_rng(6)
        )
        values = outcome.mismatches
        assert outcome.mean_mismatch == pytest.approx(values.mean())
        assert outcome.max_mismatch == pytest.approx(values.max())
        assert outcome.std_mismatch == pytest.approx(values.std())
