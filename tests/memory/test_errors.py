"""Tests for the memory error models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import (
    BitErrorRate,
    BurstError,
    CompositeError,
    NoError,
    SingleBitFlips,
)


class TestNoError:
    def test_samples_nothing(self, rng):
        assert NoError().sample_bits(100, rng).size == 0


class TestSingleBitFlips:
    @given(
        count=st.integers(min_value=0, max_value=64),
        n_bits=st.integers(min_value=64, max_value=4_096),
    )
    def test_exact_distinct_count(self, count, n_bits):
        rng = np.random.default_rng(count)
        bits = SingleBitFlips(count).sample_bits(n_bits, rng)
        assert bits.size == count
        assert len(set(bits.tolist())) == count
        assert all(0 <= bit < n_bits for bit in bits)

    def test_too_many_flips_rejected(self, rng):
        with pytest.raises(ValueError):
            SingleBitFlips(9).sample_bits(8, rng)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SingleBitFlips(-1)

    def test_describe(self):
        assert "3" in SingleBitFlips(3).describe()


class TestBurstError:
    def test_contiguous_run(self, rng):
        bits = BurstError(length=10).sample_bits(1_000, rng)
        assert bits.size == 10
        assert bits.tolist() == list(range(bits[0], bits[0] + 10))

    def test_multiple_events(self, rng):
        bits = BurstError(length=4, events=3).sample_bits(1_000, rng)
        assert bits.size == 12

    def test_burst_fits_in_region(self):
        rng = np.random.default_rng(0)
        for __ in range(50):
            bits = BurstError(length=8).sample_bits(16, rng)
            assert bits.min() >= 0 and bits.max() < 16

    def test_burst_longer_than_region_rejected(self, rng):
        with pytest.raises(ValueError):
            BurstError(length=20).sample_bits(10, rng)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurstError(length=0)
        with pytest.raises(ValueError):
            BurstError(length=1, events=-1)


class TestBitErrorRate:
    def test_zero_rate(self, rng):
        assert BitErrorRate(0.0).sample_bits(1_000, rng).size == 0

    def test_expected_count_scale(self):
        rng = np.random.default_rng(1)
        counts = [
            BitErrorRate(0.01).sample_bits(10_000, rng).size for __ in range(50)
        ]
        assert 50 < np.mean(counts) < 150

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            BitErrorRate(-0.1)
        with pytest.raises(ValueError):
            BitErrorRate(1.1)


class TestComposite:
    def test_concatenates_parts(self, rng):
        model = CompositeError((SingleBitFlips(3), BurstError(length=5)))
        assert model.sample_bits(1_000, rng).size == 8

    def test_describe_joins(self):
        model = CompositeError((SingleBitFlips(1), BurstError(length=2)))
        description = model.describe()
        assert "1" in description and "2" in description

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeError(())


class TestReproducibility:
    def test_same_seed_same_sample(self):
        model = SingleBitFlips(7)
        a = model.sample_bits(512, np.random.default_rng(3))
        b = model.sample_bits(512, np.random.default_rng(3))
        assert np.array_equal(a, b)
