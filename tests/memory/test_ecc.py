"""Tests for the SECDED scrubbing model."""

import numpy as np
import pytest

from repro.memory import MemoryRegion, SecdedScrubber


def _region(words=8, seed=0):
    array = np.random.default_rng(seed).integers(
        0, 2 ** 63, words, dtype=np.uint64
    )
    return array, MemoryRegion("mem", array)


class TestCorrection:
    def test_single_flip_per_word_corrected(self):
        array, region = _region()
        scrubber = SecdedScrubber([region])
        before = array.copy()
        region.flip(3)       # word 0
        region.flip(64 + 9)  # word 1
        report = scrubber.scrub()
        assert report.corrected_words == 2
        assert report.clean
        assert np.array_equal(array, before)

    def test_double_flip_detected_not_corrected(self):
        array, region = _region()
        scrubber = SecdedScrubber([region])
        before = array.copy()
        region.flip(5)
        region.flip(17)  # same 64-bit word
        report = scrubber.scrub()
        assert report.corrected_words == 0
        assert report.detected_uncorrectable == 1
        assert not report.clean
        assert not np.array_equal(array, before)  # still corrupted

    def test_burst_in_one_word_uncorrectable(self):
        array, region = _region()
        scrubber = SecdedScrubber([region])
        for bit in range(10):  # 10-bit MCU within word 0
            region.flip(bit)
        report = scrubber.scrub()
        assert report.miscorrected_words == 1
        assert not report.clean

    def test_clean_memory_reports_clean(self):
        __, region = _region()
        scrubber = SecdedScrubber([region])
        report = scrubber.scrub()
        assert report.clean
        assert report.corrected_words == 0

    def test_mixed_words(self):
        array, region = _region(words=4)
        scrubber = SecdedScrubber([region])
        region.flip(0)            # word 0: single -> corrected
        region.flip(64)           # word 1: double -> detected
        region.flip(65)
        region.flip(128)          # word 2: triple -> miscorrected class
        region.flip(130)
        region.flip(140)
        report = scrubber.scrub()
        assert report.corrected_words == 1
        assert report.detected_uncorrectable == 1
        assert report.miscorrected_words == 1


class TestArming:
    def test_rearm_accepts_legitimate_update(self):
        array, region = _region()
        scrubber = SecdedScrubber([region])
        array[0] ^= np.uint64(0xFFFF)  # a legitimate multi-bit write
        scrubber.arm()
        report = scrubber.scrub()
        assert report.clean

    def test_unarmed_update_looks_like_corruption(self):
        array, region = _region()
        scrubber = SecdedScrubber([region])
        array[0] ^= np.uint64(0b11)  # two bits, no re-arm
        report = scrubber.scrub()
        assert report.detected_uncorrectable == 1

    def test_requires_region(self):
        with pytest.raises(ValueError):
            SecdedScrubber([])


class TestIntegrationWithTables:
    def test_scrub_restores_hd_routing(self, request_words):
        from repro.hashing import HDHashTable
        from repro.memory import FaultInjector, SingleBitFlips

        table = HDHashTable(seed=1, dim=1_024, codebook_size=128)
        for index in range(12):
            table.join(index)
        reference = table.route_batch(request_words).copy()
        regions = table.memory_regions()
        scrubber = SecdedScrubber(regions)
        injector = FaultInjector(regions)
        injector.inject(SingleBitFlips(6), np.random.default_rng(3))
        report = scrubber.scrub()
        assert report.corrected_words >= 4  # some flips may share a word
        assert np.array_equal(table.route_batch(request_words), reference)
