"""Tests for bit-addressable memory regions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import MemoryRegion


class TestAddressing:
    def test_n_bits_flat_array(self):
        region = MemoryRegion("r", np.zeros(4, dtype=np.uint64))
        assert region.n_bits == 256

    def test_n_bits_with_row_validity(self):
        array = np.zeros((3, 8), dtype=np.uint8)  # 64 stored bits per row
        region = MemoryRegion("r", array, valid_bits_per_row=50)
        assert region.n_bits == 150

    def test_flip_sets_expected_uint64_bit(self):
        array = np.zeros(2, dtype=np.uint64)
        region = MemoryRegion("r", array)
        region.flip(5)
        assert array[0] == 1 << 5
        region.flip(64)
        assert array[1] == 1

    def test_flip_respects_row_padding(self):
        # 2 rows of 8 bytes; only 10 logical bits per row.  Logical bit 10
        # must land at row 1, bit 0 -- not at stored bit 10 of row 0.
        array = np.zeros((2, 8), dtype=np.uint8)
        region = MemoryRegion("r", array, valid_bits_per_row=10)
        region.flip(10)
        assert array[0].sum() == 0
        assert array[1, 0] == 1

    @given(st.integers(min_value=0, max_value=255))
    def test_flip_twice_is_identity(self, bit):
        array = np.arange(4, dtype=np.uint64)
        region = MemoryRegion("r", array)
        before = array.copy()
        region.flip(bit)
        region.flip(bit)
        assert np.array_equal(array, before)

    @given(st.integers(min_value=0, max_value=255))
    def test_read_tracks_flip(self, bit):
        array = np.zeros(4, dtype=np.uint64)
        region = MemoryRegion("r", array)
        assert region.read(bit) == 0
        region.flip(bit)
        assert region.read(bit) == 1

    def test_out_of_range(self):
        region = MemoryRegion("r", np.zeros(1, dtype=np.uint8))
        with pytest.raises(IndexError):
            region.flip(8)
        with pytest.raises(IndexError):
            region.flip(-1)


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self, rng):
        array = rng.integers(0, 2 ** 63, 16, dtype=np.uint64)
        region = MemoryRegion("r", array)
        saved = region.snapshot()
        for bit in (3, 77, 500):
            region.flip(bit)
        region.restore(saved)
        assert region.snapshot() == saved

    def test_restore_size_mismatch(self):
        region = MemoryRegion("r", np.zeros(2, dtype=np.uint8))
        with pytest.raises(ValueError):
            region.restore(b"\x00")


class TestValidation:
    def test_requires_ndarray(self):
        with pytest.raises(TypeError):
            MemoryRegion("r", [1, 2, 3])

    def test_requires_writable(self):
        array = np.zeros(4, dtype=np.uint8)
        array.setflags(write=False)
        with pytest.raises(ValueError):
            MemoryRegion("r", array)

    def test_requires_contiguous(self):
        array = np.zeros((4, 4), dtype=np.uint8)[:, ::2]
        with pytest.raises(ValueError):
            MemoryRegion("r", array)

    def test_valid_bits_requires_2d(self):
        with pytest.raises(ValueError):
            MemoryRegion("r", np.zeros(8, dtype=np.uint8), valid_bits_per_row=4)

    def test_valid_bits_bounds(self):
        array = np.zeros((2, 2), dtype=np.uint8)
        with pytest.raises(ValueError):
            MemoryRegion("r", array, valid_bits_per_row=0)
        with pytest.raises(ValueError):
            MemoryRegion("r", array, valid_bits_per_row=17)

    def test_repr_mentions_name_and_bits(self):
        region = MemoryRegion("ring", np.zeros(1, dtype=np.uint32))
        assert "ring" in repr(region) and "32" in repr(region)
