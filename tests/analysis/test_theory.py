"""Theory-vs-measurement cross-checks.

Each test runs a small simulated experiment and compares it against the
closed-form prediction in :mod:`repro.analysis.theory`.  Tolerances are
wide enough for sampling noise at test scale but tight enough to catch a
broken derivation or a broken simulator.
"""

import numpy as np
import pytest

from repro.analysis import uniformity_chi2
from repro.analysis.theory import (
    expected_codebook_collisions,
    expected_consistent_chi2,
    expected_corrupted_words,
    expected_hd_chi2,
    expected_rendezvous_chi2,
    expected_rendezvous_mismatch,
)
from repro.hashing import ConsistentHashTable, HDHashTable, RendezvousHashTable
from repro.memory import MismatchCampaign, SingleBitFlips

from ..conftest import populate


class TestCorruptedWords:
    def test_one_flip_one_word(self):
        assert expected_corrupted_words(1, 100) == pytest.approx(1.0)

    def test_zero_flips(self):
        assert expected_corrupted_words(0, 100) == 0.0

    def test_saturation(self):
        # Vastly more flips than words: every word corrupted.
        value = expected_corrupted_words(6_400, 100)
        assert value == pytest.approx(100.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_corrupted_words(-1, 10)
        with pytest.raises(ValueError):
            expected_corrupted_words(1, 0)


class TestRendezvousMismatchTheory:
    def test_matches_campaign(self, request_words):
        k, flips = 128, 10
        table = populate(RendezvousHashTable(seed=21), k)
        campaign = MismatchCampaign(table, request_words)
        outcome = campaign.run(
            SingleBitFlips(flips), trials=10, rng=np.random.default_rng(5)
        )
        predicted = expected_rendezvous_mismatch(flips, k)
        assert outcome.mean_mismatch == pytest.approx(predicted, rel=0.35)

    def test_scales_inversely_with_k(self):
        assert expected_rendezvous_mismatch(10, 512) == pytest.approx(
            expected_rendezvous_mismatch(10, 1024) * 2, rel=0.02
        )


class TestChiSquaredTheory:
    N_REQUESTS = 60_000
    K = 48

    @pytest.fixture(scope="class")
    def words(self):
        return np.random.default_rng(31).integers(
            0, 2 ** 64, self.N_REQUESTS, dtype=np.uint64
        )

    def _mean_chi2(self, factory, words, seeds=(0, 1, 2, 3, 4)):
        values = []
        for seed in seeds:
            table = populate(factory(seed), self.K)
            values.append(uniformity_chi2(table.route_batch(words), self.K))
        return float(np.mean(values))

    def test_consistent_chi2_scales_with_requests(self, words):
        measured = self._mean_chi2(
            lambda seed: ConsistentHashTable(seed=seed), words
        )
        predicted = expected_consistent_chi2(self.N_REQUESTS, self.K)
        assert measured == pytest.approx(predicted, rel=0.45)

    def test_hd_chi2_half_of_consistent(self, words):
        measured = self._mean_chi2(
            lambda seed: HDHashTable(seed=seed, dim=2_048, codebook_size=2_048),
            words,
        )
        predicted = expected_hd_chi2(self.N_REQUESTS, self.K)
        assert measured == pytest.approx(predicted, rel=0.45)

    def test_rendezvous_chi2_is_dof(self, words):
        measured = self._mean_chi2(
            lambda seed: RendezvousHashTable(seed=seed), words
        )
        predicted = expected_rendezvous_chi2(self.K)
        assert measured == pytest.approx(predicted, rel=0.5)

    def test_ordering_is_theoretical(self):
        consistent = expected_consistent_chi2(100_000, 64)
        hd = expected_hd_chi2(100_000, 64)
        rendezvous = expected_rendezvous_chi2(64)
        assert rendezvous < hd < consistent


class TestCodebookCollisionTheory:
    def test_matches_measured_probing(self):
        k, n = 128, 512
        probed_counts = []
        for seed in range(6):
            table = HDHashTable(seed=seed, dim=256, codebook_size=n)
            probed = 0
            for index in range(k):
                table.join(index)
                if table.position_of(index) != table.family.word(index) % n:
                    probed += 1
            probed_counts.append(probed)
        predicted = expected_codebook_collisions(k, n)
        assert np.mean(probed_counts) == pytest.approx(predicted, rel=0.5)

    def test_no_collisions_without_servers(self):
        assert expected_codebook_collisions(0, 128) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_codebook_collisions(10, 5)
