"""Tests for exact ownership analysis."""

import numpy as np
import pytest

from repro.analysis.ownership import imbalance_from_fractions, ownership_fractions
from repro.hashing import (
    ConsistentHashTable,
    HDHashTable,
    ModularHashTable,
    RendezvousHashTable,
)

from ..conftest import populate


class TestConsistentOwnership:
    def test_fractions_sum_to_one(self):
        table = populate(ConsistentHashTable(seed=3), 16)
        fractions = ownership_fractions(table)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert set(fractions) == set(table.server_ids)

    def test_matches_sampled_loads(self):
        table = populate(ConsistentHashTable(seed=3), 8)
        fractions = ownership_fractions(table)
        words = np.random.default_rng(1).integers(
            0, 2 ** 64, 200_000, dtype=np.uint64
        )
        counts = np.bincount(table.route_batch(words), minlength=8)
        for slot, server in enumerate(table.server_ids):
            sampled = counts[slot] / words.size
            assert sampled == pytest.approx(fractions[server], abs=0.005)

    def test_replicas_accumulate(self):
        table = populate(ConsistentHashTable(seed=3, replicas=4), 4)
        fractions = ownership_fractions(table)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_float32_ring_supported(self):
        table = populate(
            ConsistentHashTable(seed=3, position_dtype="float32"), 8
        )
        fractions = ownership_fractions(table)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            ownership_fractions(ConsistentHashTable(seed=3))


class TestHDOwnership:
    def test_fractions_sum_to_one(self):
        table = populate(HDHashTable(seed=3, dim=1_024, codebook_size=256), 12)
        fractions = ownership_fractions(table)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_matches_sampled_loads(self):
        table = populate(HDHashTable(seed=3, dim=1_024, codebook_size=128), 8)
        fractions = ownership_fractions(table)
        words = np.random.default_rng(2).integers(
            0, 2 ** 64, 100_000, dtype=np.uint64
        )
        counts = np.bincount(table.route_batch(words), minlength=8)
        for slot, server in enumerate(table.server_ids):
            sampled = counts[slot] / words.size
            assert sampled == pytest.approx(fractions[server], abs=0.01)

    def test_every_server_owns_its_own_node(self):
        table = populate(HDHashTable(seed=3, dim=1_024, codebook_size=256), 12)
        fractions = ownership_fractions(table)
        minimum_share = 1.0 / table.codebook_size
        for share in fractions.values():
            assert share >= minimum_share - 1e-12


class TestOtherTables:
    def test_modular_uniform(self):
        table = populate(ModularHashTable(seed=3), 5)
        fractions = ownership_fractions(table)
        for share in fractions.values():
            assert share == pytest.approx(0.2)

    def test_rendezvous_unsupported(self):
        table = populate(RendezvousHashTable(seed=3), 4)
        with pytest.raises(TypeError):
            ownership_fractions(table)


class TestImbalance:
    def test_uniform_is_one(self):
        assert imbalance_from_fractions({"a": 0.5, "b": 0.5}) == pytest.approx(1.0)

    def test_skewed(self):
        assert imbalance_from_fractions(
            {"a": 0.75, "b": 0.25}
        ) == pytest.approx(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            imbalance_from_fractions({})
