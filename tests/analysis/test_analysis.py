"""Tests for chi-squared, load summaries and statistics helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    chi_squared_statistic,
    chi_squared_test,
    geometric_mean,
    mean_with_error,
    remap_fraction,
    summarize_loads,
    uniformity_chi2,
)


class TestChiSquared:
    def test_uniform_counts_zero(self):
        assert chi_squared_statistic(np.full(10, 7.0)) == 0.0

    def test_paper_formula(self):
        counts = np.asarray([12, 8, 10, 10])
        expected = 10.0  # |R| / |S| = 40 / 4
        manual = sum((c - expected) ** 2 / expected for c in counts)
        assert chi_squared_statistic(counts) == pytest.approx(manual)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1_000), min_size=2, max_size=40
        ).filter(lambda counts: sum(counts) > 0)
    )
    def test_matches_scipy(self, counts):
        from scipy.stats import chisquare

        ours = chi_squared_statistic(np.asarray(counts, dtype=float))
        scipy_stat, scipy_p = chisquare(counts)
        assert ours == pytest.approx(scipy_stat)
        __, our_p = chi_squared_test(np.asarray(counts, dtype=float))
        assert our_p == pytest.approx(scipy_p, abs=1e-9)

    def test_explicit_expected(self):
        stat = chi_squared_statistic(
            np.asarray([5.0, 15.0]), np.asarray([10.0, 10.0])
        )
        assert stat == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_squared_statistic(np.asarray([-1.0, 2.0]))
        with pytest.raises(ValueError):
            chi_squared_statistic(np.empty(0))
        with pytest.raises(ValueError):
            chi_squared_statistic(np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            chi_squared_statistic(np.ones(2), np.zeros(2))

    def test_uniformity_from_slots(self):
        slots = np.asarray([0, 0, 1, 2])
        manual = chi_squared_statistic(np.asarray([2.0, 1.0, 1.0, 0.0]))
        assert uniformity_chi2(slots, 4) == pytest.approx(manual)

    def test_uniformity_out_of_range(self):
        with pytest.raises(ValueError):
            uniformity_chi2(np.asarray([5]), 3)


class TestLoads:
    def test_summary_fields(self):
        summary = summarize_loads(np.asarray([1, 2, 3, 6]))
        assert summary.n_servers == 4
        assert summary.total_requests == 12
        assert summary.mean == 3.0
        assert summary.minimum == 1 and summary.maximum == 6
        assert summary.max_to_mean == pytest.approx(2.0)

    def test_remap_fraction(self):
        before = np.asarray(["a", "b", "c"], dtype=object)
        after = np.asarray(["a", "x", "c"], dtype=object)
        assert remap_fraction(before, after) == pytest.approx(1 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_loads(np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            remap_fraction(np.zeros(2), np.zeros(3))


class TestSummary:
    def test_mean_with_error(self):
        stats = mean_with_error([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.count == 3
        low, high = stats.interval()
        assert low < 2.0 < high

    def test_single_sample_zero_error(self):
        stats = mean_with_error([5.0])
        assert stats.std_error == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_mean_with_error_empty(self):
        with pytest.raises(ValueError):
            mean_with_error([])
