"""Tests for workload trace recording and replay."""

import numpy as np
import pytest

from repro.emulator import (
    HashTableModule,
    JoinRequest,
    LeaveRequest,
    LookupBurst,
    LookupRequest,
    RequestGenerator,
    load_trace,
    parse_trace_lines,
    save_trace,
    trace_lines,
)
from repro.hashing import ConsistentHashTable


def _workload():
    generator = RequestGenerator(seed=7)
    stream = list(generator.joins(["a", "b", "c"]))
    stream += list(generator.lookups(500, burst_size=128))
    stream.append(LeaveRequest("b"))
    stream.append(LookupRequest(12345))
    return stream


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        stream = _workload()
        path = tmp_path / "workload.trace"
        events = save_trace(stream, str(path))
        assert events == len(stream)
        replayed = load_trace(str(path))
        assert len(replayed) == len(stream)
        for original, copy in zip(stream, replayed):
            assert type(original) is type(copy)
            if isinstance(original, LookupBurst):
                assert np.array_equal(original.keys, copy.keys)
            else:
                assert original == copy

    def test_identifier_types_preserved(self, tmp_path):
        stream = [
            JoinRequest("name"),
            JoinRequest(42),
            JoinRequest(b"\x00\xff"),
        ]
        path = tmp_path / "ids.trace"
        save_trace(stream, str(path))
        replayed = load_trace(str(path))
        assert replayed[0].server_id == "name"
        assert replayed[1].server_id == 42
        assert replayed[2].server_id == b"\x00\xff"

    def test_replay_reproduces_emulation(self, tmp_path):
        stream = _workload()
        path = tmp_path / "replay.trace"
        save_trace(stream, str(path))

        def run(requests):
            module = HashTableModule(ConsistentHashTable(seed=3), batch_size=64)
            return module.process(requests).assignment_array

        original = run(_workload())
        replayed = run(load_trace(str(path)))
        assert np.array_equal(original, replayed)


class TestValidation:
    def test_unknown_request_type_rejected(self):
        with pytest.raises(TypeError):
            list(trace_lines(["not a request"]))

    def test_string_lookup_key_rejected(self):
        with pytest.raises(TypeError):
            list(trace_lines([LookupRequest("string")]))

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            list(parse_trace_lines(['{"version": 99}']))

    def test_unknown_op_rejected(self):
        lines = ['{"version": 1}', '{"op": "explode"}']
        with pytest.raises(ValueError):
            list(parse_trace_lines(lines))

    def test_burst_length_mismatch_rejected(self):
        burst = LookupBurst(np.arange(4, dtype=np.uint64))
        lines = list(trace_lines([burst]))
        import json

        event = json.loads(lines[1])
        event["n"] = 3
        with pytest.raises(ValueError):
            list(parse_trace_lines([lines[0], json.dumps(event)]))

    def test_empty_trace(self):
        assert list(parse_trace_lines([])) == []

    def test_blank_lines_skipped(self):
        lines = ['{"version": 1}', "", '{"op": "join", "id": {"s": "x"}}']
        replayed = list(parse_trace_lines(lines))
        assert replayed == [JoinRequest("x")]


class TestTimingPercentiles:
    def test_percentiles_available(self):
        from repro.emulator import RequestGenerator

        module = HashTableModule(ConsistentHashTable(seed=1), batch_size=32)
        generator = RequestGenerator(seed=0)
        report = module.process(generator.standard_workload(range(4), 400))
        p50 = report.timing.batch_percentile_seconds(50)
        p99 = report.timing.batch_percentile_seconds(99)
        assert 0 < p50 <= p99

    def test_empty_timing(self):
        from repro.emulator import TimingStats

        assert TimingStats().batch_percentile_seconds(99) == 0.0
