"""Tests for the request generator and the batching buffer."""

import numpy as np
import pytest

from repro.emulator import (
    JoinRequest,
    LeaveRequest,
    LookupBurst,
    LookupRequest,
    RequestBuffer,
    RequestGenerator,
    server_names,
)


class TestServerNames:
    def test_names(self):
        assert server_names(3) == ["server-0", "server-1", "server-2"]

    def test_prefix(self):
        assert server_names(1, prefix="cache") == ["cache-0"]

    def test_negative(self):
        with pytest.raises(ValueError):
            server_names(-1)


class TestGenerator:
    def test_joins_and_leaves(self):
        generator = RequestGenerator(seed=0)
        joins = list(generator.joins(["a", "b"]))
        assert joins == [JoinRequest("a"), JoinRequest("b")]
        leaves = list(generator.leaves(["a"]))
        assert leaves == [LeaveRequest("a")]

    def test_lookups_total_count(self):
        generator = RequestGenerator(seed=0)
        bursts = list(generator.lookups(10_000, burst_size=4_096))
        assert sum(len(burst) for burst in bursts) == 10_000
        assert all(isinstance(burst, LookupBurst) for burst in bursts)

    def test_lookups_deterministic_by_seed(self):
        a = np.concatenate(
            [b.keys for b in RequestGenerator(seed=5).lookups(1_000)]
        )
        b = np.concatenate(
            [b.keys for b in RequestGenerator(seed=5).lookups(1_000)]
        )
        assert np.array_equal(a, b)

    def test_standard_workload_order(self):
        generator = RequestGenerator(seed=0)
        stream = list(generator.standard_workload(["a", "b"], 10))
        assert stream[0] == JoinRequest("a")
        assert stream[1] == JoinRequest("b")
        assert sum(len(r) for r in stream[2:]) == 10

    def test_churn_keeps_pool_consistent(self):
        generator = RequestGenerator(seed=1)
        active = {f"s{i}" for i in range(8)}
        standby = {f"t{i}" for i in range(4)}
        for request in generator.churn(
            sorted(active), sorted(standby), events=50
        ):
            if isinstance(request, JoinRequest):
                assert request.server_id not in active
                active.add(request.server_id)
            elif isinstance(request, LeaveRequest):
                assert request.server_id in active
                active.remove(request.server_id)
        assert len(active) >= 1

    def test_churn_with_lookups(self):
        generator = RequestGenerator(seed=2)
        stream = list(
            generator.churn(["a", "b"], ["c"], events=5, lookups_between=7)
        )
        lookups = sum(len(r) for r in stream if isinstance(r, LookupBurst))
        assert lookups == 35

    def test_invalid_args(self):
        generator = RequestGenerator(seed=0)
        with pytest.raises(ValueError):
            list(generator.lookups(-1))
        with pytest.raises(ValueError):
            list(generator.lookups(1, burst_size=0))
        with pytest.raises(ValueError):
            list(generator.churn(["a"], [], events=1, leave_probability=2.0))


class TestBuffer:
    def test_batches_at_most_batch_size(self):
        buffer = RequestBuffer(batch_size=256)
        stream = [LookupBurst(np.arange(1_000, dtype=np.uint64))]
        units = list(buffer.dispatch(stream))
        sizes = [len(unit) for unit in units]
        assert sizes == [256, 256, 256, 232]

    def test_flush_before_membership_change(self):
        buffer = RequestBuffer(batch_size=256)
        stream = [
            LookupBurst(np.arange(100, dtype=np.uint64)),
            JoinRequest("x"),
            LookupBurst(np.arange(50, dtype=np.uint64)),
        ]
        units = list(buffer.dispatch(stream))
        assert len(units[0]) == 100  # flushed early, smaller than batch
        assert units[1] == JoinRequest("x")
        assert len(units[2]) == 50

    def test_single_lookups_coalesce(self):
        buffer = RequestBuffer(batch_size=4)
        stream = [LookupRequest(i) for i in range(10)]
        units = list(buffer.dispatch(stream))
        assert [len(u) for u in units] == [4, 4, 2]
        assert np.concatenate(units).tolist() == list(range(10))

    def test_bursts_split_across_batches_preserve_order(self):
        buffer = RequestBuffer(batch_size=8)
        stream = [
            LookupBurst(np.arange(5, dtype=np.uint64)),
            LookupBurst(np.arange(5, 12, dtype=np.uint64)),
        ]
        units = list(buffer.dispatch(stream))
        assert np.concatenate(units).tolist() == list(range(12))

    def test_rejects_non_integer_single_lookup(self):
        buffer = RequestBuffer(batch_size=4)
        with pytest.raises(TypeError):
            list(buffer.dispatch([LookupRequest("string-key")]))

    def test_rejects_unknown_request(self):
        buffer = RequestBuffer(batch_size=4)
        with pytest.raises(TypeError):
            list(buffer.dispatch(["not a request"]))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            RequestBuffer(batch_size=0)
