"""Test package marker (enables relative imports of tests.conftest)."""
