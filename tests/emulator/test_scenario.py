"""Tests for the longitudinal scenario runner."""

import pytest

from repro.emulator.scenario import (
    AutoscalePolicy,
    FailoverConfig,
    LiveReshardConfig,
    ScenarioConfig,
    run_failover_scenario,
    run_live_reshard_scenario,
    run_scenario,
)
from repro.hashing import ConsistentHashTable, HDHashTable, ModularHashTable


class TestAutoscalePolicy:
    def test_scales_up_under_pressure(self):
        policy = AutoscalePolicy(target_load=100.0)
        assert policy.decide(n_requests=2_000, n_servers=4) > 0

    def test_scales_down_when_idle(self):
        policy = AutoscalePolicy(target_load=100.0, min_servers=2)
        assert policy.decide(n_requests=100, n_servers=16) < 0

    def test_holds_in_band(self):
        policy = AutoscalePolicy(target_load=100.0)
        assert policy.decide(n_requests=1_000, n_servers=10) == 0

    def test_respects_bounds(self):
        policy = AutoscalePolicy(target_load=1.0, max_servers=8)
        assert policy.decide(n_requests=10_000, n_servers=8) == 0
        policy = AutoscalePolicy(target_load=1_000.0, min_servers=4)
        assert policy.decide(n_requests=1, n_servers=4) == 0


class TestScenario:
    def _config(self, **overrides):
        values = dict(
            steps=10,
            initial_servers=6,
            requests_per_step=2_000,
            failure_probability=0.2,
            seed=5,
        )
        values.update(overrides)
        return ScenarioConfig(**values)

    def test_records_every_step(self):
        result = run_scenario(
            lambda: ConsistentHashTable(seed=1), self._config()
        )
        assert len(result.records) == 10
        for record in result.records:
            assert record.n_servers >= 2
            assert 0.0 <= record.remapped <= 1.0
            assert record.imbalance >= 1.0

    def test_deterministic_by_seed(self):
        a = run_scenario(lambda: ConsistentHashTable(seed=1), self._config())
        b = run_scenario(lambda: ConsistentHashTable(seed=1), self._config())
        assert [r.remapped for r in a.records] == [
            r.remapped for r in b.records
        ]

    def test_autoscaler_tracks_traffic(self):
        config = self._config(
            steps=12,
            traffic_profile=(0.2, 3.0),
            failure_probability=0.0,
            policy=AutoscalePolicy(target_load=250.0, min_servers=2,
                                   max_servers=64),
        )
        result = run_scenario(lambda: ConsistentHashTable(seed=1), config)
        sizes = [record.n_servers for record in result.records]
        assert max(sizes) > min(sizes)  # it actually scaled
        assert result.scaling_events > 0

    def test_modular_pays_more_churn_than_consistent(self):
        config = self._config(steps=8, failure_probability=0.5)
        modular = run_scenario(lambda: ModularHashTable(seed=2), config)
        consistent = run_scenario(lambda: ConsistentHashTable(seed=2), config)
        assert modular.total_remapped > 2 * consistent.total_remapped

    def test_hd_table_runs_scenario(self):
        config = self._config(steps=6)
        result = run_scenario(
            lambda: HDHashTable(seed=2, dim=1_024, codebook_size=256), config
        )
        assert len(result.records) == 6
        assert result.mean_imbalance >= 1.0


class TestFailoverScenario:
    def _config(self, **overrides):
        values = dict(
            steps=6,
            servers=12,
            requests_per_step=3_000,
            fail_step=2,
            replicas=2,
            seed=7,
        )
        values.update(overrides)
        return FailoverConfig(**values)

    def test_primary_dies_and_traffic_shifts(self):
        result = run_failover_scenario(
            lambda: ConsistentHashTable(seed=2), self._config()
        )
        assert len(result.records) == 6
        assert result.dead_server is not None
        failure = result.records[2]
        # Mid-step failure: some of the step's traffic hit the dead
        # primary and was served by a replica instead.
        assert 0 < failure.failed_over < 0.5
        assert failure.n_servers == 11  # reconciled at step end
        # The permanent removal is billed by the epoch accounting.
        assert 0 < failure.remapped < 1
        for step, record in enumerate(result.records):
            if step != 2:
                assert record.failed_over == 0.0
                assert record.remapped == 0.0

    def test_remap_bill_orders_algorithms(self):
        config = self._config()
        modular = run_failover_scenario(
            lambda: ModularHashTable(seed=2), config
        )
        consistent = run_failover_scenario(
            lambda: ConsistentHashTable(seed=2), config
        )
        # Removing one of 12 servers rebills ~everything for modular,
        # only the dead arc for minimal-disruption algorithms.
        assert modular.remap_bill > 2 * consistent.remap_bill

    def test_deterministic_by_seed(self):
        config = self._config()
        a = run_failover_scenario(lambda: HDHashTable(
            seed=2, dim=1_024, codebook_size=128), config)
        b = run_failover_scenario(lambda: HDHashTable(
            seed=2, dim=1_024, codebook_size=128), config)
        assert a.dead_server == b.dead_server
        assert [r.failed_over for r in a.records] == [
            r.failed_over for r in b.records
        ]

    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            run_failover_scenario(
                lambda: ConsistentHashTable(seed=1),
                self._config(fail_step=9),
            )
        with pytest.raises(ValueError):
            run_failover_scenario(
                lambda: ConsistentHashTable(seed=1),
                self._config(replicas=1),
            )


class TestLiveReshardScenario:
    def _config(self, **overrides):
        values = dict(
            keys=1_500,
            initial_servers=8,
            target_servers=12,
            requests_per_tick=400,
            max_keys_per_tick=150,
            seed=4,
        )
        values.update(overrides)
        return LiveReshardConfig(**values)

    def test_traffic_flows_while_data_moves(self):
        result = run_live_reshard_scenario(
            lambda: ConsistentHashTable(seed=7), self._config()
        )
        assert result.tracked == 1_500
        assert 0 < result.planned_moves < 1_500
        assert result.remap_fraction == result.planned_moves / 1_500
        # the migration took several throttled ticks, each serving reads
        assert len(result.records) >= 2
        assert all(r.requests == 400 for r in result.records)
        # committed progress is monotonic and drains the whole plan
        committed = [r.committed for r in result.records]
        assert committed == sorted(committed)
        assert committed[-1] == result.planned_moves
        assert result.records[-1].in_flight == 0

    def test_misses_only_while_in_flight(self):
        result = run_live_reshard_scenario(
            lambda: ConsistentHashTable(seed=7), self._config()
        )
        for record in result.records:
            if record.in_flight == 0:
                assert record.misses == 0
        # the scenario itself verified every key readable at the end;
        # the aggregate rate is bounded by the remap fraction
        assert 0.0 <= result.miss_rate <= result.remap_fraction

    def test_sla_verdict_follows_miss_rate(self):
        generous = run_live_reshard_scenario(
            lambda: ConsistentHashTable(seed=7), self._config(miss_sla=1.0)
        )
        assert generous.sla_met
        strict = run_live_reshard_scenario(
            lambda: ModularHashTable(seed=7), self._config(miss_sla=0.0)
        )
        assert strict.misses > 0
        assert not strict.sla_met

    def test_modular_migrates_more_than_consistent(self):
        moved = {}
        for name, factory in (
            ("consistent", lambda: ConsistentHashTable(seed=7)),
            ("modular", lambda: ModularHashTable(seed=7)),
        ):
            moved[name] = run_live_reshard_scenario(
                factory, self._config()
            ).planned_moves
        assert moved["modular"] > 2 * moved["consistent"]

    def test_noop_resize_rejected(self):
        with pytest.raises(ValueError):
            run_live_reshard_scenario(
                lambda: ConsistentHashTable(seed=7),
                self._config(target_servers=8),
            )

    def test_deterministic_by_seed(self):
        results = [
            run_live_reshard_scenario(
                lambda: ConsistentHashTable(seed=7), self._config()
            )
            for __ in range(2)
        ]
        assert results[0].misses == results[1].misses
        assert results[0].planned_moves == results[1].planned_moves


class TestAutoscaleScenario:
    def _config(self, **overrides):
        from repro.emulator.scenario import AutoscaleScenarioConfig

        values = dict(
            steps=8,
            initial_servers=4,
            writes_per_step=300,
            reads_per_sample=200,
            drain_step=3,
            max_keys_per_tick=300,
            seed=9,
        )
        values.update(overrides)
        return AutoscaleScenarioConfig(**values)

    def test_weighted_fleet_scales_and_drains_inside_sla(self):
        from repro.emulator.scenario import run_autoscale_scenario
        from repro.hashing import weighted_table

        result = run_autoscale_scenario(
            lambda: weighted_table("rendezvous", seed=3), self._config()
        )
        assert len(result.records) == 8
        assert result.served > 0
        # The diurnal curve forces at least one scaling action, and
        # the operator drain at step 3 completes gracefully.
        assert result.scaling_events > 0
        assert result.drains >= 1
        assert result.sla_met, (
            "miss rate {:.3f} above SLA {:.3f}".format(
                result.miss_rate, result.miss_sla
            )
        )
        # Utilization stays inside (or converges back into) the band.
        assert result.records[-1].utilization < 1.0

    def test_weight_blind_table_runs_on_unit_weights(self):
        from repro.emulator.scenario import run_autoscale_scenario
        from repro.hashing import make_table

        result = run_autoscale_scenario(
            lambda: make_table("modular", seed=5),
            self._config(steps=5, drain_step=None),
        )
        assert len(result.records) == 5
        assert all(
            record.total_weight == record.n_servers
            for record in result.records
        )

    def test_determinism(self):
        from repro.emulator.scenario import run_autoscale_scenario
        from repro.hashing import weighted_table

        a = run_autoscale_scenario(
            lambda: weighted_table("consistent", seed=1), self._config()
        )
        b = run_autoscale_scenario(
            lambda: weighted_table("consistent", seed=1), self._config()
        )
        assert a.records == b.records
        assert a.misses == b.misses

    def test_validation(self):
        import pytest as _pytest

        from repro.emulator.scenario import run_autoscale_scenario
        from repro.hashing import make_table

        with _pytest.raises(ValueError):
            run_autoscale_scenario(
                lambda: make_table("modular"), self._config(steps=0)
            )
        with _pytest.raises(ValueError):
            run_autoscale_scenario(
                lambda: make_table("modular"),
                self._config(initial_servers=1),
            )
