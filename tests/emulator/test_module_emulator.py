"""End-to-end tests for the hash-table module and emulator."""

import numpy as np

from repro.emulator import (
    Emulator,
    HashTableModule,
    RequestGenerator,
    UniformKeys,
)
from repro.hashing import ConsistentHashTable, HDHashTable


def _hd():
    return HDHashTable(seed=1, dim=1_024, codebook_size=128)


class TestModule:
    def test_processes_standard_workload(self):
        table = ConsistentHashTable(seed=1)
        module = HashTableModule(table, batch_size=64)
        generator = RequestGenerator(seed=0)
        report = module.process(generator.standard_workload(range(8), 500))
        assert table.server_count == 8
        assert report.n_lookups == 500
        assert report.timing.n_membership_events == 8
        assert report.assignment_array.shape == (500,)
        assert set(report.assignment_array.tolist()) <= set(range(8))

    def test_vectorized_and_scalar_paths_agree(self):
        generator_a = RequestGenerator(seed=3)
        generator_b = RequestGenerator(seed=3)
        vec = HashTableModule(_hd(), batch_size=64, vectorized=True)
        scl = HashTableModule(_hd(), batch_size=64, vectorized=False)
        report_vec = vec.process(generator_a.standard_workload(range(6), 300))
        report_scl = scl.process(generator_b.standard_workload(range(6), 300))
        assert np.array_equal(
            report_vec.assignment_array, report_scl.assignment_array
        )

    def test_timing_recorded(self):
        module = HashTableModule(ConsistentHashTable(seed=1), batch_size=32)
        generator = RequestGenerator(seed=0)
        report = module.process(generator.standard_workload(range(4), 200))
        assert report.timing.lookup_seconds > 0
        assert report.timing.mean_lookup_micros > 0
        assert len(report.timing.batch_durations) == -(-200 // 32)

    def test_load_stats_sum_to_lookups(self):
        module = HashTableModule(ConsistentHashTable(seed=1), batch_size=32)
        generator = RequestGenerator(seed=0)
        report = module.process(generator.standard_workload(range(4), 200))
        assert report.load.total == 200
        assert report.load.imbalance() >= 1.0

    def test_assignment_recording_optional(self):
        module = HashTableModule(
            ConsistentHashTable(seed=1), record_assignments=False
        )
        generator = RequestGenerator(seed=0)
        report = module.process(generator.standard_workload(range(4), 100))
        assert report.assignment_array.size == 0
        assert report.n_lookups == 100

    def test_leave_requests_processed(self):
        table = ConsistentHashTable(seed=1)
        module = HashTableModule(table)
        generator = RequestGenerator(seed=0)
        stream = list(generator.joins(range(8))) + list(generator.leaves([3]))
        module.process(stream)
        assert table.server_count == 7


class TestEmulator:
    def test_run_standard(self):
        emulator = Emulator(lambda: ConsistentHashTable(seed=2), seed=1)
        report = emulator.run_standard(range(10), 400)
        assert report.n_lookups == 400
        assert report.table_name == "consistent"

    def test_fresh_table_per_run(self):
        emulator = Emulator(lambda: ConsistentHashTable(seed=2), seed=1)
        first = emulator.run_standard(range(4), 50)
        second = emulator.run_standard(range(4), 50)
        assert np.array_equal(
            first.assignment_array, second.assignment_array
        )

    def test_run_stream_with_churn(self):
        emulator = Emulator(lambda: ConsistentHashTable(seed=2), seed=1)
        generator = RequestGenerator(seed=4)
        stream = (
            list(generator.joins(range(8)))
            + list(
                generator.churn(
                    list(range(8)), ["spare-1", "spare-2"],
                    events=6, lookups_between=25,
                )
            )
        )
        report = emulator.run_stream(stream)
        assert report.n_lookups == 150
        assert report.timing.n_membership_events == 8 + 6

    def test_distribution_plumbs_through(self):
        emulator = Emulator(lambda: ConsistentHashTable(seed=2), seed=1)
        report = emulator.run_standard(
            range(4), 300, distribution=UniformKeys(space=17)
        )
        assert report.n_lookups == 300
