"""Tests for the request-key distributions."""

import numpy as np
import pytest

from repro.emulator import HotspotKeys, SequentialKeys, UniformKeys, ZipfKeys


class TestUniform:
    def test_shape_dtype_range(self, rng):
        keys = UniformKeys(space=1_000).sample(500, rng)
        assert keys.dtype == np.uint64
        assert keys.shape == (500,)
        assert keys.max() < 1_000

    def test_deterministic_by_seed(self):
        a = UniformKeys().sample(100, np.random.default_rng(1))
        b = UniformKeys().sample(100, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_invalid_space(self):
        with pytest.raises(ValueError):
            UniformKeys(space=0)


class TestZipf:
    def test_rank_one_most_popular(self, rng):
        keys = ZipfKeys(universe=1_000, exponent=1.2).sample(20_000, rng)
        counts = np.bincount(keys.astype(np.int64), minlength=1_000)
        assert counts.argmax() == 0
        assert counts[0] > counts[10] > counts[200]

    def test_universe_bound(self, rng):
        keys = ZipfKeys(universe=50).sample(5_000, rng)
        assert keys.max() < 50

    def test_offset_shifts_ids(self, rng):
        keys = ZipfKeys(universe=10, offset=1_000).sample(100, rng)
        assert keys.min() >= 1_000

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfKeys(universe=0)
        with pytest.raises(ValueError):
            ZipfKeys(exponent=0.0)


class TestHotspot:
    def test_hot_traffic_fraction(self, rng):
        dist = HotspotKeys(hot_fraction=0.8, hot_count=4)
        keys = dist.sample(20_000, rng)
        hot = (keys < 4).mean()
        assert 0.75 < hot < 0.85

    def test_all_cold(self, rng):
        dist = HotspotKeys(hot_fraction=0.0, hot_count=4, space=1 << 40)
        keys = dist.sample(5_000, rng)
        assert (keys >= 4).mean() > 0.99

    def test_invalid(self):
        with pytest.raises(ValueError):
            HotspotKeys(hot_fraction=1.5)
        with pytest.raises(ValueError):
            HotspotKeys(hot_count=0)


class TestSequential:
    def test_ascending(self, rng):
        keys = SequentialKeys(start=5).sample(10, rng)
        assert keys.tolist() == list(range(5, 15))
